//! Committed benchmark snapshots: one JSON file per measurement run.
//!
//! The `bench_snapshot` binary measures the performance axes this
//! repository optimises — index build, store open (eager vs lazy, cold vs
//! warm), first-query fault-in cost in seconds *and bytes*, sustained
//! query rate (serial vs flat-parallel) and PQL parse latency — and emits
//! them as a `BENCH_<date>.json` at the repository root. Snapshots are
//! committed, so `git log -- 'BENCH_*.json'` is the project's performance
//! trajectory: a regression shows up as a diff, not as a memory.
//!
//! The schema is the [`BenchSnapshot`] struct below. Validation
//! (`bench_snapshot --validate <path>`) deserializes the file back into
//! the struct — a missing or mistyped key is a parse error — and then
//! sanity-checks the invariants that make a snapshot meaningful (positive
//! timings, lazy reading strictly fewer bytes than eager).

use serde::{Deserialize, Serialize};

/// Current snapshot schema version. Bump when fields change meaning;
/// additions that keep old fields valid may keep the version. (The serde
/// shim treats *missing* keys as hard errors, so adding a required
/// section — like v2's `serving` — is itself a version bump, and every
/// committed snapshot must be regenerated with it.)
///
/// * v1 — index build, store open, lazy fault-in, query rate, PQL parse.
/// * v2 — adds the `serving` section: network daemon throughput,
///   coalesced vs serial dispatch (see `docs/serving.md` §8).
/// * v3 — adds the `obs` section: metrics-registry deltas captured around
///   the measurement phases (cache hit/miss, segment faults, checksum
///   verifications, coalesced batch sizes — see `docs/observability.md`).
/// * v4 — adds the `sharding` section: the same store served monolithic
///   vs sharded (query rate side by side) with per-shard fault and
///   byte-fetched deltas from the `store.shard.*.<shard>` counter
///   families (see `docs/store-format.md` § sharded stores).
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 4;

/// Corpus and store shape the metrics were measured against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusInfo {
    /// Data sets in the indexed corpus.
    pub n_datasets: usize,
    /// Function segments in the store directory.
    pub n_segments: usize,
    /// Store file size in bytes.
    pub store_bytes: u64,
    /// Indexed function entries.
    pub n_functions: usize,
}

/// The measured values. Timings are seconds unless the name says
/// otherwise; byte counts come from the store's `SegmentSource` counter,
/// so they are payload bytes actually read, not file sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Building the full index from raw data.
    pub index_build_secs: f64,
    /// Writing the index as a store file (encode + fsync + rename).
    pub store_write_secs: f64,
    /// Eager session open, first time in this process (decodes every
    /// segment).
    pub open_eager_cold_secs: f64,
    /// Eager session open, repeated (OS page cache warm).
    pub open_eager_warm_secs: f64,
    /// Bytes one eager open reads (header + manifest + geometry + every
    /// segment).
    pub open_eager_bytes: u64,
    /// Lazy session open, first time (header + manifest + geometry only).
    pub open_lazy_cold_secs: f64,
    /// Lazy session open, repeated.
    pub open_lazy_warm_secs: f64,
    /// Bytes a lazy open reads before any query.
    pub open_lazy_bytes: u64,
    /// First single-pair query on a fresh lazy session (faults in that
    /// pair's segments).
    pub first_query_lazy_secs: f64,
    /// Total bytes the lazy session has read after that first query —
    /// open + faulted segments. Strictly less than `open_eager_bytes`.
    pub lazy_bytes_after_first_query: u64,
    /// The same single-pair query on the eager session (no disk I/O).
    pub first_query_eager_secs: f64,
    /// Repeating the query on the lazy session (segment + result caches
    /// warm).
    pub warm_query_secs: f64,
    /// Relationships evaluated in the rate query.
    pub rate_query_relationships: usize,
    /// All-pairs query throughput, one worker, relationships per minute.
    pub query_rate_serial_per_min: f64,
    /// All-pairs query throughput on the flat executor, all host cores.
    pub query_rate_flat_per_min: f64,
    /// Compiling the canonical PQL text of the rate query, microseconds.
    pub pql_parse_us: f64,
}

/// Network-daemon throughput, measured by `polygamy_bench::serving`:
/// the same store served twice — batch coalescing on, then off — by N
/// concurrent clients over localhost, each mode on a fresh cold-cache
/// session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingMetrics {
    /// Concurrent client connections per mode.
    pub clients: usize,
    /// Queries served per mode.
    pub queries_total: u64,
    /// Served queries per second with cross-connection coalescing (the
    /// daemon's default dispatch).
    pub served_qps_coalesced: f64,
    /// Served queries per second with serial per-request dispatch
    /// (`--no-coalesce`).
    pub served_qps_serial: f64,
    /// `query_many` dispatches the coalesced run issued.
    pub coalesced_batches: u64,
    /// Mean queries per coalesced dispatch (> 1 means merging happened).
    pub mean_coalesced_batch: f64,
}

/// Metrics-registry deltas captured around the measurement phases
/// (schema v3). Unlike the wall-clock numbers these are exact event
/// counts from `polygamy_obs`, so validation can check structural
/// invariants (a lazy session cannot fault more segments than the store
/// holds; a dispatch carries at least one query) instead of tolerances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsMetrics {
    /// `core.query_cache.hits` delta across the single-pair query phase —
    /// the warm repeat must land here, so ≥ 1.
    pub query_cache_hits: u64,
    /// `core.query_cache.misses` delta across the same phase (the cold
    /// lazy and eager first runs).
    pub query_cache_misses: u64,
    /// `store.segment_faults` delta: segments the lazy session demand-
    /// paged for its queries. ≥ 1 and ≤ the corpus segment count.
    pub segment_faults: u64,
    /// `store.segment_cache_hits` delta: segment lookups the lazy cache
    /// answered without touching the source.
    pub segment_cache_hits: u64,
    /// `store.checksum_verifications` delta: first-decode integrity
    /// checks on faulted segments.
    pub checksum_verifications: u64,
    /// `store.checksum_failures` delta — anything but 0 is corruption.
    pub checksum_failures: u64,
    /// `serve.batch_size` histogram observation-count delta across the
    /// serving phase: `query_many` dispatches both modes issued.
    pub batch_dispatches: u64,
    /// `serve.batch_size` histogram sum delta: queries those dispatches
    /// carried. ≥ `batch_dispatches` and ≥ the per-mode query total.
    pub batch_queries: u64,
}

/// Sharded-vs-monolith serving (schema v4): the monolithic store is
/// migrated to an N-shard layout (`shard_store`, byte-exact) and the
/// same all-pairs workload runs on a lazy session over each, so the two
/// rates differ only by the scatter-gather routing and per-shard I/O.
/// The per-shard vectors are deltas of the `store.shard.faults.<shard>`
/// and `store.shard.bytes_fetched.<shard>` counter families across the
/// sharded run — exact event counts, one slot per shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardingMetrics {
    /// Shards in the measured layout (≥ 2; 1 would just be the monolith).
    pub n_shards: usize,
    /// All-pairs lazy query throughput on the monolithic store,
    /// relationships per minute.
    pub query_rate_monolith_per_min: f64,
    /// The same workload on the sharded store, relationships per minute.
    pub query_rate_sharded_per_min: f64,
    /// Per-shard segment-fault deltas (`store.shard.faults.<shard>`),
    /// indexed by shard.
    pub shard_faults: Vec<u64>,
    /// Per-shard payload-byte deltas
    /// (`store.shard.bytes_fetched.<shard>`), indexed by shard.
    pub shard_bytes_fetched: Vec<u64>,
}

/// One committed benchmark measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Schema version ([`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Measurement date, `YYYY-MM-DD` (UTC).
    pub date: String,
    /// True when the run used the shrunk quick workload.
    pub quick: bool,
    /// Host worker threads available to the flat executor.
    pub workers: usize,
    /// Monte Carlo permutations used by the rate query.
    pub permutations: usize,
    /// Shape of the measured corpus/store.
    pub corpus: CorpusInfo,
    /// The measured values.
    pub metrics: Metrics,
    /// Network serving throughput (schema v2).
    pub serving: ServingMetrics,
    /// Metrics-registry deltas around the phases (schema v3).
    pub obs: ObsMetrics,
    /// Sharded-vs-monolith serving (schema v4).
    pub sharding: ShardingMetrics,
}

impl BenchSnapshot {
    /// Checks the invariants that make a snapshot meaningful. Returns a
    /// list of violations (empty = valid).
    pub fn problems(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.schema_version != SNAPSHOT_SCHEMA_VERSION {
            out.push(format!(
                "schema_version {} (this build reads {SNAPSHOT_SCHEMA_VERSION})",
                self.schema_version
            ));
        }
        if !is_iso_date(&self.date) {
            out.push(format!("date '{}' is not YYYY-MM-DD", self.date));
        }
        if self.workers == 0 {
            out.push("workers = 0".into());
        }
        if self.corpus.n_datasets == 0 || self.corpus.n_segments == 0 {
            out.push("empty corpus".into());
        }
        let m = &self.metrics;
        for (name, v) in [
            ("index_build_secs", m.index_build_secs),
            ("store_write_secs", m.store_write_secs),
            ("open_eager_cold_secs", m.open_eager_cold_secs),
            ("open_eager_warm_secs", m.open_eager_warm_secs),
            ("open_lazy_cold_secs", m.open_lazy_cold_secs),
            ("open_lazy_warm_secs", m.open_lazy_warm_secs),
            ("first_query_lazy_secs", m.first_query_lazy_secs),
            ("first_query_eager_secs", m.first_query_eager_secs),
            ("warm_query_secs", m.warm_query_secs),
            ("query_rate_serial_per_min", m.query_rate_serial_per_min),
            ("query_rate_flat_per_min", m.query_rate_flat_per_min),
            ("pql_parse_us", m.pql_parse_us),
        ] {
            if !(v.is_finite() && v > 0.0) {
                out.push(format!("{name} = {v} (expected finite > 0)"));
            }
        }
        if m.open_eager_bytes == 0 || m.open_lazy_bytes == 0 {
            out.push("zero byte counts".into());
        }
        if m.open_lazy_bytes >= m.open_eager_bytes {
            out.push(format!(
                "lazy open read {} bytes, eager {} — laziness bought nothing",
                m.open_lazy_bytes, m.open_eager_bytes
            ));
        }
        if m.lazy_bytes_after_first_query >= m.open_eager_bytes {
            out.push(format!(
                "lazy open + first query read {} bytes, eager open {} — \
                 expected strictly fewer",
                m.lazy_bytes_after_first_query, m.open_eager_bytes
            ));
        }
        let s = &self.serving;
        if s.clients == 0 || s.queries_total == 0 || s.coalesced_batches == 0 {
            out.push("empty serving run".into());
        }
        for (name, v) in [
            ("served_qps_coalesced", s.served_qps_coalesced),
            ("served_qps_serial", s.served_qps_serial),
        ] {
            if !(v.is_finite() && v > 0.0) {
                out.push(format!("{name} = {v} (expected finite > 0)"));
            }
        }
        if s.mean_coalesced_batch < 1.0 {
            out.push(format!(
                "mean_coalesced_batch = {} (a dispatch carries ≥ 1 query)",
                s.mean_coalesced_batch
            ));
        }
        // Coalescing must not *cost* throughput. The win itself is
        // load-shape and host dependent (a 1-core box only amortises
        // dispatch overhead), so the committed number documents the gain
        // and validation only flags an outright regression, with slack
        // for scheduler noise on loaded CI hosts.
        if s.served_qps_coalesced < 0.75 * s.served_qps_serial {
            out.push(format!(
                "coalesced dispatch served {:.1} q/s vs {:.1} serial — \
                 coalescing made serving slower",
                s.served_qps_coalesced, s.served_qps_serial
            ));
        }
        let o = &self.obs;
        if o.query_cache_hits == 0 {
            out.push("obs: warm repeat never hit the query cache".into());
        }
        if o.segment_faults == 0 {
            out.push("obs: lazy session never faulted a segment".into());
        }
        if o.segment_faults > self.corpus.n_segments as u64 {
            out.push(format!(
                "obs: {} segment faults, but the store only holds {} segments \
                 — the lazy cache is thrashing",
                o.segment_faults, self.corpus.n_segments
            ));
        }
        if o.checksum_verifications < o.segment_faults {
            out.push(format!(
                "obs: {} faults but only {} checksum verifications — \
                 segments decoded unverified",
                o.segment_faults, o.checksum_verifications
            ));
        }
        if o.checksum_failures != 0 {
            out.push(format!(
                "obs: {} checksum failure(s) — store corruption",
                o.checksum_failures
            ));
        }
        if o.batch_dispatches == 0 || o.batch_queries < o.batch_dispatches {
            out.push(format!(
                "obs: {} dispatches carrying {} queries — a dispatch holds ≥ 1 query",
                o.batch_dispatches, o.batch_queries
            ));
        }
        if o.batch_queries < s.queries_total {
            out.push(format!(
                "obs: batch histogram saw {} queries, serving ran {} per mode \
                 — dispatches went unobserved",
                o.batch_queries, s.queries_total
            ));
        }
        let sh = &self.sharding;
        if sh.n_shards < 2 {
            out.push(format!(
                "sharding: n_shards = {} (a 1-shard layout is just the monolith)",
                sh.n_shards
            ));
        }
        if sh.shard_faults.len() != sh.n_shards || sh.shard_bytes_fetched.len() != sh.n_shards {
            out.push(format!(
                "sharding: {} fault / {} byte slots for {} shards — \
                 one delta per shard expected",
                sh.shard_faults.len(),
                sh.shard_bytes_fetched.len(),
                sh.n_shards
            ));
        }
        for (name, v) in [
            (
                "query_rate_monolith_per_min",
                sh.query_rate_monolith_per_min,
            ),
            ("query_rate_sharded_per_min", sh.query_rate_sharded_per_min),
        ] {
            if !(v.is_finite() && v > 0.0) {
                out.push(format!("sharding: {name} = {v} (expected finite > 0)"));
            }
        }
        if sh.shard_faults.iter().sum::<u64>() == 0 {
            out.push("sharding: the sharded run never faulted a segment".into());
        }
        if sh.shard_faults.iter().sum::<u64>() > self.corpus.n_segments as u64 {
            out.push(format!(
                "sharding: {} shard faults, but the store only holds {} \
                 segments — the sharded run refaulted",
                sh.shard_faults.iter().sum::<u64>(),
                self.corpus.n_segments
            ));
        }
        if sh
            .shard_faults
            .iter()
            .zip(&sh.shard_bytes_fetched)
            .any(|(&f, &b)| f > 0 && b == 0)
        {
            out.push("sharding: a shard faulted segments but fetched no bytes".into());
        }
        // Scatter-gather routing must not *cost* throughput: the same
        // slack as the coalescing check, for scheduler noise on loaded
        // CI hosts.
        if sh.query_rate_sharded_per_min < 0.75 * sh.query_rate_monolith_per_min {
            out.push(format!(
                "sharding: {:.1} relationships/min sharded vs {:.1} monolithic \
                 — sharding made serving slower",
                sh.query_rate_sharded_per_min, sh.query_rate_monolith_per_min
            ));
        }
        out
    }
}

/// True for a `YYYY-MM-DD` string with plausible month/day fields.
pub fn is_iso_date(s: &str) -> bool {
    let b = s.as_bytes();
    if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
        return false;
    }
    let digits = |r: std::ops::Range<usize>| s[r].parse::<u32>().ok();
    match (digits(0..4), digits(5..7), digits(8..10)) {
        (Some(_), Some(m), Some(d)) => (1..=12).contains(&m) && (1..=31).contains(&d),
        _ => false,
    }
}

/// Today's UTC date as `YYYY-MM-DD`, derived from the system clock with
/// the standard days-to-civil conversion (no date-time dependency).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(secs.div_euclid(86_400));
    format!("{y:04}-{m:02}-{d:02}")
}

/// Converts days since 1970-01-01 to (year, month, day) — Howard Hinnant's
/// `civil_from_days` algorithm, exact over the proleptic Gregorian
/// calendar.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // year of era
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // day of year, Mar-based
    let mp = (5 * doy + 2) / 153; // Mar-based month
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_conversion_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(20_672), (2026, 8, 7));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn iso_date_checks() {
        assert!(is_iso_date("2026-08-07"));
        assert!(!is_iso_date("2026-8-7"));
        assert!(!is_iso_date("2026-13-01"));
        assert!(!is_iso_date("20260807"));
        assert!(is_iso_date(&today_utc()));
    }

    fn sample() -> BenchSnapshot {
        BenchSnapshot {
            schema_version: SNAPSHOT_SCHEMA_VERSION,
            date: "2026-08-07".into(),
            quick: true,
            workers: 4,
            permutations: 40,
            corpus: CorpusInfo {
                n_datasets: 9,
                n_segments: 300,
                store_bytes: 1_000_000,
                n_functions: 300,
            },
            metrics: Metrics {
                index_build_secs: 1.0,
                store_write_secs: 0.1,
                open_eager_cold_secs: 0.2,
                open_eager_warm_secs: 0.15,
                open_eager_bytes: 990_000,
                open_lazy_cold_secs: 0.001,
                open_lazy_warm_secs: 0.001,
                open_lazy_bytes: 10_000,
                first_query_lazy_secs: 0.05,
                lazy_bytes_after_first_query: 200_000,
                first_query_eager_secs: 0.04,
                warm_query_secs: 0.001,
                rate_query_relationships: 500,
                query_rate_serial_per_min: 10_000.0,
                query_rate_flat_per_min: 40_000.0,
                pql_parse_us: 3.0,
            },
            serving: ServingMetrics {
                clients: 4,
                queries_total: 24,
                served_qps_coalesced: 12.0,
                served_qps_serial: 9.0,
                coalesced_batches: 8,
                mean_coalesced_batch: 3.0,
            },
            obs: ObsMetrics {
                query_cache_hits: 1,
                query_cache_misses: 2,
                segment_faults: 6,
                segment_cache_hits: 6,
                checksum_verifications: 6,
                checksum_failures: 0,
                batch_dispatches: 32,
                batch_queries: 48,
            },
            sharding: ShardingMetrics {
                n_shards: 3,
                query_rate_monolith_per_min: 38_000.0,
                query_rate_sharded_per_min: 39_000.0,
                shard_faults: vec![40, 35, 25],
                shard_bytes_fetched: vec![120_000, 100_000, 80_000],
            },
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = sample();
        let json = serde_json::to_string(&snap).unwrap();
        let back: BenchSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(back.problems().is_empty(), "{:?}", back.problems());
    }

    #[test]
    fn validation_catches_regressions() {
        let mut snap = sample();
        snap.metrics.open_lazy_bytes = snap.metrics.open_eager_bytes;
        snap.metrics.query_rate_flat_per_min = f64::NAN;
        let problems = snap.problems();
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn validation_catches_serving_regression() {
        let mut snap = sample();
        // Slower than serial beyond the noise allowance: flagged.
        snap.serving.served_qps_coalesced = 0.5 * snap.serving.served_qps_serial;
        let problems = snap.problems();
        assert_eq!(problems.len(), 1, "{problems:?}");
        // Within the noise allowance: tolerated.
        snap.serving.served_qps_coalesced = 0.9 * snap.serving.served_qps_serial;
        assert!(snap.problems().is_empty());
    }

    #[test]
    fn validation_catches_obs_violations() {
        let mut snap = sample();
        // More faults than the store has segments, and a corruption.
        snap.obs.segment_faults = snap.corpus.n_segments as u64 + 1;
        snap.obs.checksum_verifications = snap.obs.segment_faults;
        snap.obs.checksum_failures = 1;
        let problems = snap.problems();
        assert_eq!(problems.len(), 2, "{problems:?}");
        // A dispatch carrying less than one query is structurally
        // impossible (31 still covers the per-mode total of 24).
        let mut snap = sample();
        snap.obs.batch_queries = snap.obs.batch_dispatches - 1;
        let problems = snap.problems();
        assert_eq!(problems.len(), 1, "{problems:?}");
    }

    #[test]
    fn validation_catches_sharding_violations() {
        let mut snap = sample();
        // A slot count that disagrees with the layout, and a sharded run
        // slower than the monolith beyond the noise allowance.
        snap.sharding.shard_faults = vec![100, 0];
        snap.sharding.query_rate_sharded_per_min = 0.5 * snap.sharding.query_rate_monolith_per_min;
        let problems = snap.problems();
        assert_eq!(problems.len(), 2, "{problems:?}");
        // A degenerate 1-shard layout is just the monolith: flagged.
        let mut snap = sample();
        snap.sharding.n_shards = 1;
        snap.sharding.shard_faults = vec![100];
        snap.sharding.shard_bytes_fetched = vec![300_000];
        let problems = snap.problems();
        assert_eq!(problems.len(), 1, "{problems:?}");
        // Faults without bytes means the counters disagree: flagged.
        let mut snap = sample();
        snap.sharding.shard_bytes_fetched = vec![120_000, 0, 80_000];
        let problems = snap.problems();
        assert_eq!(problems.len(), 1, "{problems:?}");
    }

    #[test]
    fn missing_keys_fail_to_parse() {
        let snap = sample();
        let json = serde_json::to_string(&snap).unwrap();
        let broken = json.replace("\"pql_parse_us\"", "\"renamed_key\"");
        assert!(serde_json::from_str::<BenchSnapshot>(&broken).is_err());
    }
}

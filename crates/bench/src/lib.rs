//! # polygamy-bench — experiment harnesses
//!
//! One module per table/figure of the paper's evaluation (Section 6 and
//! appendices). Every harness prints the paper's reported numbers next to
//! our measured values so EXPERIMENTS.md can record paper-vs-measured for
//! each artefact; `run_all` regenerates the whole set.
//!
//! Absolute wall-clock numbers differ from the paper's 20-node Hadoop
//! cluster by design; the harnesses reproduce *shapes*: linear index
//! scaling, constant relationship-evaluation rate, speedup curves, pruning
//! ratios, robustness plateaus and baseline blind spots.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod serving;
pub mod snapshot;

use std::fmt::Write as _;
use std::time::Instant;

/// True when quick mode is requested (`--quick` argument or
/// `POLYGAMY_QUICK=1`); harnesses shrink workloads accordingly.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("POLYGAMY_QUICK").is_some()
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// A minimal fixed-width table printer for harness reports.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<w$} ", cell, w = widths[c]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.header);
        for (c, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if c == ncols - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats a float with fixed precision, rendering NaN as `-`.
pub fn fnum(v: f64, digits: usize) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.digits$}")
    }
}

/// Formats bytes human-readably.
pub fn human_bytes(b: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn helpers() {
        assert_eq!(fnum(f64::NAN, 2), "-");
        assert_eq!(fnum(1.234, 2), "1.23");
        assert_eq!(human_bytes(10), "10.0 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        let (v, secs) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}

//! Harness binary for `experiments::relationships`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::relationships::run(quick));
}

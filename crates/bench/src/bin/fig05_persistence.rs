//! Harness binary for `experiments::persistence`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::persistence::run(quick));
}

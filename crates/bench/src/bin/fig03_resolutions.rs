//! Harness binary for `experiments::resolutions`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::resolutions::run(quick));
}

//! Harness binary for `experiments::index_scaling`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::index_scaling::run(quick));
}

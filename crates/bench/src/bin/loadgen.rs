//! Load generator for the `polygamy-serve` network daemon.
//!
//! ```text
//! loadgen --addr HOST:PORT --file <queries.pql> [--clients N] [--requests N] [--print] [--metrics]
//! loadgen --addr HOST:PORT --metrics
//! loadgen --addr HOST:PORT --shutdown
//! loadgen --self-serve <store.plst> --file <queries.pql> [--clients N] [--requests N]
//! ```
//!
//! **External mode** (`--addr`): every client opens its own connection
//! and sends the whole batch file as one request, `--requests` times
//! (default 1), concurrently — the traffic shape the daemon's coalescer
//! exists for. All responses are asserted byte-identical across clients
//! and repeats (the determinism guarantee of `docs/serving.md` §8); with
//! `--print`, exactly one copy of the response JSONL goes to stdout, so
//! CI can `diff` it against the offline
//! `polygamy-store query --json --file` output. `--shutdown` sends the
//! `S` frame and waits for the drain acknowledgement.
//!
//! Every request's round-trip latency lands in a registry histogram with
//! the same pinned bucket boundaries the daemon uses
//! (`polygamy_obs::LATENCY_BUCKETS_US`), and the report prints p50/p95/p99
//! upper bounds from it. `--metrics` sends the `M` frame
//! (`docs/serving.md` §10) after the drive and cross-checks the daemon's
//! own counters against the traffic this run sent: `serve.queries` must
//! cover it, and the batch-size histogram's sum must equal `serve.queries`
//! — the reconciliation CI relies on, so it is only meaningful against a
//! dedicated, otherwise-idle daemon. Given without `--file`, `--metrics`
//! just fetches the snapshot and prints its JSON to stdout.
//!
//! **Self-serve mode** (`--self-serve`): starts the daemon in-process
//! over the given store — twice, coalescing on and off, fresh cold-cache
//! sessions — drives it with the same client fleet, and reports
//! served-queries/sec for both dispatch modes. This is the measurement
//! that fills the `serving` section of the committed `BENCH_*.json`
//! snapshots.

use polygamy_obs::{names, Histogram, LATENCY_BUCKETS_US};
use polygamy_serve::{Client, Response};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = run(&args);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> String {
    "usage:\n\
     \x20 loadgen --addr HOST:PORT --file <queries.pql> [--clients N] [--requests N] [--print] [--metrics]\n\
     \x20 loadgen --addr HOST:PORT --metrics\n\
     \x20 loadgen --addr HOST:PORT --shutdown\n\
     \x20 loadgen --self-serve <store.plst> --file <queries.pql> [--clients N] [--requests N]"
        .into()
}

fn run(args: &[String]) -> Result<(), String> {
    let clients: usize = match flag_value(args, "--clients") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--clients expects a positive integer")?,
        None => 4,
    };
    let requests: usize = match flag_value(args, "--requests") {
        Some(v) => v
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--requests expects a positive integer")?,
        None => 1,
    };
    if let Some(store) = flag_value(args, "--self-serve") {
        let file = flag_value(args, "--file").ok_or_else(usage)?;
        return self_serve(&store, &file, clients, requests);
    }
    let addr = flag_value(args, "--addr").ok_or_else(usage)?;
    if args.iter().any(|a| a == "--shutdown") {
        let client = Client::connect_retry(addr.as_str(), Duration::from_secs(10))
            .map_err(|e| e.to_string())?;
        client.shutdown_server().map_err(|e| e.to_string())?;
        eprintln!("loadgen: server acknowledged drain");
        return Ok(());
    }
    let metrics = args.iter().any(|a| a == "--metrics");
    let file = match flag_value(args, "--file") {
        Some(f) => f,
        // A bare metrics probe: fetch the snapshot and print its JSON.
        None if metrics => {
            let snap = fetch_metrics(&addr)?;
            println!("{}", snap.to_json());
            return Ok(());
        }
        None => return Err(usage()),
    };
    let batch = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    external(
        &addr,
        &batch,
        clients,
        requests,
        args.iter().any(|a| a == "--print"),
        metrics,
    )
}

/// Connects (with retry) and fetches one `M`-frame snapshot.
fn fetch_metrics(addr: &str) -> Result<polygamy_obs::MetricsSnapshot, String> {
    let mut client =
        Client::connect_retry(addr, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    client.metrics().map_err(|e| e.to_string())
}

/// Drives a running daemon: `clients` connections, each sending the whole
/// batch `requests` times; returns all responses.
fn drive(addr: &str, batch: &str, clients: usize, requests: usize) -> Result<Vec<String>, String> {
    // One process-wide latency histogram, the same pinned buckets the
    // daemon uses, so client-observed and server-observed distributions
    // are directly comparable.
    let latency: Arc<Histogram> =
        polygamy_obs::global().histogram(names::LOADGEN_LATENCY_US, LATENCY_BUCKETS_US);
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_string();
            let batch = batch.to_string();
            let latency = Arc::clone(&latency);
            std::thread::spawn(move || -> Result<Vec<String>, String> {
                // Retry the connect: CI starts the daemon and the load in
                // the same breath.
                let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(10))
                    .map_err(|e| e.to_string())?;
                let mut out = Vec::with_capacity(requests);
                for _ in 0..requests {
                    let t0 = Instant::now();
                    let response = client.request(&batch).map_err(|e| e.to_string())?;
                    latency.record(t0.elapsed().as_micros() as u64);
                    match response {
                        Response::Results(json) => out.push(json),
                        Response::Error(e) => {
                            return Err(format!("server error: {}: {}", e.error, e.message))
                        }
                    }
                }
                Ok(out)
            })
        })
        .collect();
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().map_err(|_| "client thread panicked")??);
    }
    Ok(all)
}

fn external(
    addr: &str,
    batch: &str,
    clients: usize,
    requests: usize,
    print: bool,
    metrics: bool,
) -> Result<(), String> {
    let t0 = Instant::now();
    let responses = drive(addr, batch, clients, requests)?;
    let elapsed = t0.elapsed().as_secs_f64();
    let reference = responses.first().ok_or("no responses")?;
    // Determinism across clients, connections and batch composition: every
    // response to the same request must be the same bytes.
    for (i, r) in responses.iter().enumerate() {
        if r != reference {
            return Err(format!(
                "response {i} differs from response 0 — serving is not deterministic"
            ));
        }
    }
    let queries_per_request = batch
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .count();
    let total_queries = (responses.len() * queries_per_request) as u64;
    eprintln!(
        "loadgen: {} request(s) x {queries_per_request} query(ies) over {clients} client(s) \
         in {elapsed:.2}s — {:.1} served queries/sec, all responses byte-identical",
        responses.len(),
        total_queries as f64 / elapsed.max(1e-9)
    );
    report_latency();
    if print {
        println!("{reference}");
    }
    if metrics {
        reconcile_metrics(addr, total_queries)?;
    }
    Ok(())
}

/// Prints client-observed request-latency percentiles from the registry
/// histogram `drive` filled. Percentiles are bucket upper bounds — the
/// histogram is fixed-bucket, so "p99 ≤ X" is the honest phrasing.
fn report_latency() {
    let snap = polygamy_obs::global().snapshot();
    let Some(h) = snap.histogram(names::LOADGEN_LATENCY_US) else {
        return;
    };
    let pct = |q: f64| match h.quantile(q) {
        Some(us) => format!("{us}µs"),
        None => "-".into(),
    };
    eprintln!(
        "loadgen: request latency over {} sample(s): p50 ≤ {}, p95 ≤ {}, p99 ≤ {}",
        h.count(),
        pct(0.50),
        pct(0.95),
        pct(0.99)
    );
}

/// Fetches the daemon's `M`-frame snapshot and reconciles it with the
/// traffic this run sent. Only meaningful against a dedicated daemon with
/// no other traffic — exactly the CI topology.
fn reconcile_metrics(addr: &str, sent_queries: u64) -> Result<(), String> {
    let snap = fetch_metrics(addr)?;
    let served = snap.counter("serve.queries");
    let requests = snap.counter("serve.requests");
    if served == 0 || requests == 0 {
        return Err(format!(
            "metrics: daemon reports {requests} request(s) / {served} query(ies) — \
             counters should be non-zero after a drive"
        ));
    }
    if served < sent_queries {
        return Err(format!(
            "metrics: daemon counted {served} query(ies), this run sent {sent_queries}"
        ));
    }
    let sizes = snap
        .histogram("serve.batch_size")
        .ok_or("metrics: snapshot has no serve.batch_size histogram")?;
    // Every admitted query is dispatched exactly once on the error-free
    // path, so the histogram's sum reconciles with the query counter.
    if sizes.sum != served {
        return Err(format!(
            "metrics: batch-size histogram dispatched {} query(ies), \
             serve.queries says {served} — counters do not reconcile",
            sizes.sum
        ));
    }
    if sizes.count() != snap.counter("serve.batches") {
        return Err(format!(
            "metrics: batch-size histogram holds {} observation(s), \
             serve.batches says {} — counters do not reconcile",
            sizes.count(),
            snap.counter("serve.batches")
        ));
    }
    eprintln!(
        "loadgen: daemon metrics reconcile — {requests} request(s), {served} query(ies), \
         {} dispatch(es), mean batch {:.2}",
        sizes.count(),
        sizes.mean()
    );
    Ok(())
}

fn self_serve(store: &str, file: &str, clients: usize, requests: usize) -> Result<(), String> {
    let batch = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    // One query per line, like the wire protocol: the fleet sends single
    // queries so the coalescer has something to merge.
    let queries: Vec<String> = batch
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();
    let m = polygamy_bench::serving::measure_serving(
        std::path::Path::new(store),
        clients,
        requests,
        &queries,
    )?;
    println!(
        "served-queries/sec: coalesced {:.1}, serial {:.1} ({}x{} requests, {} queries, \
         {} coalesced dispatches, mean batch {:.2})",
        m.qps_coalesced,
        m.qps_serial,
        m.clients,
        requests,
        m.queries_total,
        m.coalesced.batches,
        m.coalesced.mean_batch()
    );
    Ok(())
}

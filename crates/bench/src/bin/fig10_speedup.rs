//! Harness binary for `experiments::speedup`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::speedup::run(quick));
}

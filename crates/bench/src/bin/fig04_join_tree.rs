//! Harness binary for `experiments::join_tree`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::join_tree::run(quick));
}

//! Harness binary for `experiments::motivation`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::motivation::run(quick));
}

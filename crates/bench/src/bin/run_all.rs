//! Runs every experiment harness in sequence and writes the combined
//! report to `experiments_output.md` (and stdout). Pass `--quick` to
//! shrink workloads.

use polygamy_bench::experiments;
use std::io::Write;

type Harness = fn(bool) -> String;

fn main() {
    let quick = polygamy_bench::quick_mode();
    let runs: Vec<(&str, Harness)> = vec![
        ("fig01_motivation", experiments::motivation::run),
        ("table01_collection", experiments::collection::run),
        ("fig03_resolutions", experiments::resolutions::run),
        ("fig04_join_tree", experiments::join_tree::run),
        ("fig05_persistence", experiments::persistence::run),
        ("fig07_index_scaling", experiments::index_scaling::run),
        (
            "fig08_indexing_pipeline",
            experiments::indexing_pipeline::run,
        ),
        ("fig09_query_rate", experiments::query_rate::run),
        ("fig10_speedup", experiments::speedup::run),
        ("fig11_pruning", experiments::pruning::run),
        ("fig12_robustness", experiments::robustness::run),
        ("exp_correctness", experiments::correctness::run),
        ("exp_relationships", experiments::relationships::run),
        ("exp_baselines", experiments::baselines::run),
        ("exp_space_overhead", experiments::space::run),
    ];
    let mut combined = String::new();
    for (name, run) in runs {
        eprintln!(">>> {name}");
        let (report, secs) = polygamy_bench::timed(|| run(quick));
        combined.push_str(&report);
        combined.push_str(&format!("\n_(harness {name} took {secs:.1}s)_\n\n---\n\n"));
    }
    print!("{combined}");
    let path = "experiments_output.md";
    if let Ok(mut f) = std::fs::File::create(path) {
        let _ = f.write_all(combined.as_bytes());
        eprintln!(">>> wrote {path}");
    }
}

//! Harness binary for `experiments::space`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::space::run(quick));
}

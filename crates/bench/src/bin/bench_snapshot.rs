//! Measures the tracked performance axes and emits a committed
//! `BENCH_<date>.json` snapshot — the repository's benchmark trajectory.
//!
//! ```text
//! bench_snapshot [--quick] [--out PATH] [--date YYYY-MM-DD]
//! bench_snapshot --validate PATH
//! ```
//!
//! Measurement covers: index build, store write, store open eager vs lazy
//! (cold and warm), the lazy path's byte footprint through the first
//! single-pair query (asserted strictly smaller than an eager open's),
//! sustained all-pairs query rate serial vs flat-parallel, sharded vs
//! monolithic serving of the same workload (with per-shard fault/byte
//! deltas), and PQL parse latency. `--validate` re-reads an emitted file
//! through the schema struct — a missing or mistyped key is a parse
//! error — and checks the snapshot invariants, exiting non-zero on any
//! violation.

use polygamy_bench::snapshot::{
    today_utc, BenchSnapshot, CorpusInfo, Metrics, ObsMetrics, ServingMetrics, ShardingMetrics,
    SNAPSHOT_SCHEMA_VERSION,
};
use polygamy_bench::{human_bytes, timed};
use polygamy_core::cache::{QueryCache, DEFAULT_QUERY_CACHE_CAPACITY};
use polygamy_core::pql::{parse_query, to_pql};
use polygamy_core::prelude::*;
use polygamy_core::{run_query, DataPolygamy};
use polygamy_datagen::{urban_collection, UrbanConfig};
use polygamy_mapreduce::Cluster;
use polygamy_obs::names;
use polygamy_store::{shard_store, LoadFilter, SourceBackend, Store, StoreSession};
use std::hint::black_box;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = if let Some(path) = flag_value(&args, "--validate") {
        validate(&path)
    } else {
        run(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_snapshot: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The registry metric each `ObsMetrics` snapshot field is derived
/// from, by **literal** name. `--validate` diffs this mapping against
/// the catalogue (`polygamy_obs::names::ALL`), so renaming or retiring
/// a metric breaks snapshot validation here instead of silently
/// orphaning the committed `BENCH_*.json` obs sections.
fn obs_metric_sources() -> [(&'static str, &'static str); 10] {
    [
        ("query_cache_hits", "core.query_cache.hits"),
        ("query_cache_misses", "core.query_cache.misses"),
        ("segment_faults", "store.segment.faults"),
        ("segment_cache_hits", "store.segment.cache_hits"),
        ("checksum_verifications", "store.checksum.verifications"),
        ("checksum_failures", "store.checksum.failures"),
        ("batch_dispatches", "serve.batch_size"),
        ("batch_queries", "serve.batch_size"),
        // The sharding section's per-shard vectors index these families;
        // shard 0 always exists, so it stands in for the family here.
        ("shard_faults", "store.shard.faults.0"),
        ("shard_bytes_fetched", "store.shard.bytes_fetched.0"),
    ]
}

fn validate(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("validate: cannot read {path}: {e}"))?;
    let snap: BenchSnapshot = serde_json::from_str(&text)
        .map_err(|e| format!("validate: {path} does not match the snapshot schema: {e}"))?;
    let problems = snap.problems();
    if !problems.is_empty() {
        return Err(format!(
            "validate: {path} violates snapshot invariants:\n  - {}",
            problems.join("\n  - ")
        ));
    }
    for (field, metric) in obs_metric_sources() {
        if !names::is_canonical(metric) {
            return Err(format!(
                "validate: obs field `{field}` is derived from `{metric}`, which is not \
                 in the polygamy_obs::names catalogue — the metric was renamed or \
                 retired without updating the snapshot schema"
            ));
        }
    }
    println!(
        "{path}: valid snapshot (schema v{}, {}, {} data sets, {} segments)",
        snap.schema_version, snap.date, snap.corpus.n_datasets, snap.corpus.n_segments
    );
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let quick = polygamy_bench::quick_mode();
    let date = match flag_value(args, "--date") {
        Some(d) if polygamy_bench::snapshot::is_iso_date(&d) => d,
        Some(d) => return Err(format!("--date '{d}' is not YYYY-MM-DD")),
        None => today_utc(),
    };
    let out_path = flag_value(args, "--out").unwrap_or_else(|| format!("BENCH_{date}.json"));
    let permutations = if quick { 40 } else { 200 };

    // ---- Corpus + index build.
    eprintln!("building corpus (quick = {quick})...");
    let collection = urban_collection(UrbanConfig {
        n_years: if quick { 1 } else { 2 },
        scale: if quick { 0.02 } else { 0.2 },
        extra_weather_attrs: if quick { 0 } else { 8 },
        ..UrbanConfig::default()
    });
    let mut dp = DataPolygamy::new(
        collection.geometry().clone(),
        polygamy_core::framework::Config::default(),
    );
    for d in &collection.datasets {
        dp.add_dataset(d.clone());
    }
    let (_, index_build_secs) = timed(|| dp.build_index());
    let index = dp.index().map_err(|e| e.to_string())?;
    eprintln!(
        "indexed {} data sets, {} functions in {index_build_secs:.2}s",
        collection.datasets.len(),
        index.functions.len()
    );

    // ---- Store write.
    let store_path =
        std::env::temp_dir().join(format!("bench-snapshot-{}.plst", std::process::id()));
    let (store, store_write_secs) = timed(|| Store::save(&store_path, dp.geometry(), index));
    let store = store.map_err(|e| e.to_string())?;
    let corpus = CorpusInfo {
        n_datasets: store.manifest().datasets.len(),
        n_segments: store.manifest().segments.len(),
        store_bytes: store.file_bytes().map_err(|e| e.to_string())?,
        n_functions: index.functions.len(),
    };
    drop(store);
    eprintln!(
        "wrote store: {} in {store_write_secs:.2}s",
        human_bytes(corpus.store_bytes as usize)
    );

    let config = polygamy_core::framework::Config::default();

    // ---- Store open: eager, cold then warm, with byte accounting. The
    // byte counter lives on the Store's source, so open + load are staged
    // explicitly.
    let (eager_cold, open_eager_cold_secs) = timed(|| -> Result<_, String> {
        let store = Store::open(&store_path).map_err(|e| e.to_string())?;
        let session = StoreSession::from_store(&store, config, &LoadFilter::all())
            .map_err(|e| e.to_string())?;
        Ok((session, store.source().bytes_fetched()))
    });
    let (eager_session, open_eager_bytes) = eager_cold?;
    let (warm, open_eager_warm_secs) = timed(|| -> Result<_, String> {
        let store = Store::open(&store_path).map_err(|e| e.to_string())?;
        StoreSession::from_store(&store, config, &LoadFilter::all()).map_err(|e| e.to_string())
    });
    drop(warm?);

    // ---- Store open: lazy, cold then warm.
    let (lazy_cold, open_lazy_cold_secs) = timed(|| {
        StoreSession::open_lazy_with(
            &store_path,
            config,
            &LoadFilter::all(),
            SourceBackend::default(),
        )
        .map_err(|e| e.to_string())
    });
    let lazy_session = lazy_cold?;
    let open_lazy_bytes = lazy_session
        .lazy_index()
        .expect("lazy session")
        .store()
        .source()
        .bytes_fetched();
    let (lazy_warm, open_lazy_warm_secs) = timed(|| {
        StoreSession::open_lazy_with(
            &store_path,
            config,
            &LoadFilter::all(),
            SourceBackend::default(),
        )
        .map_err(|e| e.to_string())
    });
    drop(lazy_warm?);
    eprintln!(
        "open: eager {open_eager_cold_secs:.3}s / {} — lazy {open_lazy_cold_secs:.4}s / {}",
        human_bytes(open_eager_bytes as usize),
        human_bytes(open_lazy_bytes as usize)
    );

    // ---- First single-pair query: lazy faults in only that pair. The
    // registry snapshot taken here brackets the phase, so the deltas are
    // exactly this phase's cache/fault/verification events.
    let obs_pair_before = polygamy_obs::global().snapshot();
    let first = collection
        .datasets
        .first()
        .ok_or("empty corpus")?
        .meta
        .name
        .clone();
    let second = collection
        .datasets
        .get(1)
        .ok_or("need at least two data sets")?
        .meta
        .name
        .clone();
    let pair_query = RelationshipQuery::between(&[first.as_str()], &[second.as_str()]).with_clause(
        Clause::default()
            .permutations(permutations)
            .include_insignificant(),
    );
    let (lazy_first, first_query_lazy_secs) =
        timed(|| lazy_session.query(&pair_query).map_err(|e| e.to_string()));
    let lazy_first = lazy_first?;
    let lazy_bytes_after_first_query = lazy_session
        .lazy_index()
        .expect("lazy session")
        .store()
        .source()
        .bytes_fetched();
    let (eager_first, first_query_eager_secs) =
        timed(|| eager_session.query(&pair_query).map_err(|e| e.to_string()));
    let eager_first = eager_first?;
    if lazy_first != eager_first {
        return Err("lazy and eager sessions disagree on the same query".into());
    }
    if lazy_bytes_after_first_query >= open_eager_bytes {
        return Err(format!(
            "lazy open + first query read {lazy_bytes_after_first_query} bytes, \
             eager open read {open_eager_bytes} — laziness bought nothing"
        ));
    }
    let (warm_res, warm_query_secs) =
        timed(|| lazy_session.query(&pair_query).map_err(|e| e.to_string()));
    let _ = warm_res?;
    let obs_pair_after = polygamy_obs::global().snapshot();
    eprintln!(
        "first pair query: lazy {first_query_lazy_secs:.2}s (total {} read), eager {first_query_eager_secs:.2}s",
        human_bytes(lazy_bytes_after_first_query as usize)
    );

    // ---- Sustained all-pairs rate, serial vs flat, on the in-memory index
    // (disk out of the picture: this measures the evaluation engine).
    let rate_query = RelationshipQuery::all().with_clause(
        Clause::default()
            .permutations(permutations)
            .include_insignificant(),
    );
    let run_with = |cluster: Cluster| {
        let cfg = polygamy_core::framework::Config {
            cluster,
            ..polygamy_core::framework::Config::default()
        };
        let cache = QueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY);
        timed(|| run_query(index, dp.geometry(), &cfg, &cache, &rate_query).expect("rate query"))
    };
    let (serial_rels, serial_secs) = run_with(Cluster::local(1));
    let (flat_rels, flat_secs) = run_with(Cluster::host());
    assert_eq!(serial_rels, flat_rels, "executor is worker-independent");
    let workers = Cluster::host().workers();
    eprintln!(
        "rate: {} relationships — serial {serial_secs:.2}s, flat {flat_secs:.2}s on {workers} workers",
        flat_rels.len()
    );

    // ---- Network serving: coalesced vs serial dispatch over the store
    // file written above, fresh cold-cache sessions per mode.
    let serve_clients = 4;
    let serve_requests = if quick { 6 } else { 12 };
    let serve_queries: Vec<String> = [
        format!("between {first} and {second} where permutations = {permutations} and include insignificant"),
        format!("between {first} and * where permutations = {permutations}"),
        format!("between {second} and * where permutations = {permutations} and class = salient"),
    ]
    .into_iter()
    .collect();
    let obs_serving_before = polygamy_obs::global().snapshot();
    let served = polygamy_bench::serving::measure_serving(
        &store_path,
        serve_clients,
        serve_requests,
        &serve_queries,
    )?;
    let obs_serving_after = polygamy_obs::global().snapshot();
    eprintln!(
        "serving: coalesced {:.1} q/s vs serial {:.1} q/s — {} queries in {} dispatches \
         (mean batch {:.2})",
        served.qps_coalesced,
        served.qps_serial,
        served.coalesced.queries,
        served.coalesced.batches,
        served.coalesced.mean_batch()
    );

    // ---- Sharded vs monolithic serving: migrate the store (byte-exact)
    // to a 3-shard layout and run the same all-pairs workload on a fresh
    // cold lazy session over each, so the two rates differ only by the
    // scatter-gather routing and per-shard I/O. Results are asserted
    // identical, and the sharded run's registry bracket yields the exact
    // per-shard fault/byte deltas.
    let n_shards = 3usize;
    let catalog_path = std::env::temp_dir().join(format!(
        "bench-snapshot-{}-sharded.plst",
        std::process::id()
    ));
    let shard_catalog =
        shard_store(&store_path, &catalog_path, n_shards).map_err(|e| e.to_string())?;
    let rate_over = |path: &std::path::Path| -> Result<(usize, f64), String> {
        let session = StoreSession::open_lazy_with(
            path,
            config,
            &LoadFilter::all(),
            SourceBackend::default(),
        )
        .map_err(|e| e.to_string())?;
        let (rels, secs) = timed(|| session.query(&rate_query).map_err(|e| e.to_string()));
        let rels = rels?;
        if rels != flat_rels {
            return Err(format!(
                "lazy session over {} disagrees with the in-memory index",
                path.display()
            ));
        }
        Ok((rels.len(), secs))
    };
    let (mono_rels_n, mono_secs) = rate_over(&store_path)?;
    let obs_shard_before = polygamy_obs::global().snapshot();
    let (sharded_rels_n, sharded_secs) = rate_over(&catalog_path)?;
    let obs_shard_after = polygamy_obs::global().snapshot();
    let shard_counter_delta = |prefix: &str| -> Vec<u64> {
        (0..n_shards)
            .map(|s| {
                let name = format!("{prefix}{s}");
                obs_shard_after
                    .counter(&name)
                    .saturating_sub(obs_shard_before.counter(&name))
            })
            .collect()
    };
    let sharding = ShardingMetrics {
        n_shards,
        query_rate_monolith_per_min: mono_rels_n as f64 / mono_secs.max(1e-9) * 60.0,
        query_rate_sharded_per_min: sharded_rels_n as f64 / sharded_secs.max(1e-9) * 60.0,
        shard_faults: shard_counter_delta(names::STORE_SHARD_FAULTS_PREFIX),
        shard_bytes_fetched: shard_counter_delta(names::STORE_SHARD_BYTES_FETCHED_PREFIX),
    };
    for shard in 0..n_shards {
        let _ = std::fs::remove_file(shard_catalog.shard_path(&catalog_path, shard));
    }
    let _ = std::fs::remove_file(&catalog_path);
    eprintln!(
        "sharding: {:.0} relationships/min over {n_shards} shards vs {:.0} monolithic — \
         per-shard faults {:?}",
        sharding.query_rate_sharded_per_min,
        sharding.query_rate_monolith_per_min,
        sharding.shard_faults
    );

    // ---- PQL parse latency, amortised to a stable microsecond figure.
    let pql = to_pql(&rate_query);
    let parse_repeats = 2_000u32;
    let (_, parse_total) = timed(|| {
        for _ in 0..parse_repeats {
            black_box(parse_query(black_box(&pql)).expect("canonical PQL parses"));
        }
    });

    // ---- Registry deltas for the obs section: exact event counts
    // bracketed by the snapshots above, so concurrent phases cannot bleed
    // into each other's numbers.
    let delta =
        |after: &polygamy_obs::MetricsSnapshot,
         before: &polygamy_obs::MetricsSnapshot,
         name: &str| { after.counter(name).saturating_sub(before.counter(name)) };
    let batch_hist = |s: &polygamy_obs::MetricsSnapshot| {
        s.histogram(names::SERVE_BATCH_SIZE)
            .map(|h| (h.count(), h.sum))
            .unwrap_or((0, 0))
    };
    let (dispatches_before, batch_sum_before) = batch_hist(&obs_serving_before);
    let (dispatches_after, batch_sum_after) = batch_hist(&obs_serving_after);
    let obs = ObsMetrics {
        query_cache_hits: delta(
            &obs_pair_after,
            &obs_pair_before,
            names::CORE_QUERY_CACHE_HITS,
        ),
        query_cache_misses: delta(
            &obs_pair_after,
            &obs_pair_before,
            names::CORE_QUERY_CACHE_MISSES,
        ),
        segment_faults: delta(
            &obs_pair_after,
            &obs_pair_before,
            names::STORE_SEGMENT_FAULTS,
        ),
        segment_cache_hits: delta(
            &obs_pair_after,
            &obs_pair_before,
            names::STORE_SEGMENT_CACHE_HITS,
        ),
        checksum_verifications: delta(
            &obs_pair_after,
            &obs_pair_before,
            names::STORE_CHECKSUM_VERIFICATIONS,
        ),
        checksum_failures: delta(
            &obs_pair_after,
            &obs_pair_before,
            names::STORE_CHECKSUM_FAILURES,
        ),
        batch_dispatches: dispatches_after.saturating_sub(dispatches_before),
        batch_queries: batch_sum_after.saturating_sub(batch_sum_before),
    };
    eprintln!(
        "obs: {} segment fault(s), {} cache hit(s), {} verification(s); \
         serving dispatched {} quer(ies) in {} batch(es)",
        obs.segment_faults,
        obs.segment_cache_hits,
        obs.checksum_verifications,
        obs.batch_queries,
        obs.batch_dispatches
    );

    let snapshot = BenchSnapshot {
        schema_version: SNAPSHOT_SCHEMA_VERSION,
        date,
        quick,
        workers,
        permutations,
        corpus,
        metrics: Metrics {
            index_build_secs,
            store_write_secs,
            open_eager_cold_secs,
            open_eager_warm_secs,
            open_eager_bytes,
            open_lazy_cold_secs,
            open_lazy_warm_secs,
            open_lazy_bytes,
            first_query_lazy_secs,
            lazy_bytes_after_first_query,
            first_query_eager_secs,
            warm_query_secs,
            rate_query_relationships: flat_rels.len(),
            query_rate_serial_per_min: serial_rels.len() as f64 / serial_secs.max(1e-9) * 60.0,
            query_rate_flat_per_min: flat_rels.len() as f64 / flat_secs.max(1e-9) * 60.0,
            pql_parse_us: parse_total * 1e6 / f64::from(parse_repeats),
        },
        serving: ServingMetrics {
            clients: served.clients,
            queries_total: served.queries_total,
            served_qps_coalesced: served.qps_coalesced,
            served_qps_serial: served.qps_serial,
            coalesced_batches: served.coalesced.batches,
            mean_coalesced_batch: served.coalesced.mean_batch(),
        },
        obs,
        sharding,
    };
    let problems = snapshot.problems();
    if !problems.is_empty() {
        return Err(format!(
            "snapshot violates its own invariants:\n  - {}",
            problems.join("\n  - ")
        ));
    }
    let json = serde_json::to_string(&snapshot).map_err(|e| e.to_string())?;
    std::fs::write(&out_path, json.as_bytes())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let _ = std::fs::remove_file(&store_path);
    println!("wrote {out_path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_sources_are_in_the_catalogue() {
        for (field, metric) in obs_metric_sources() {
            assert!(
                names::is_canonical(metric),
                "obs field `{field}` derives from `{metric}`, absent from names::ALL"
            );
        }
    }

    #[test]
    fn catalogue_rejects_unknown_and_prefix_only_names() {
        assert!(!names::is_canonical("store.segment_faults")); // pre-rename spelling
        assert!(!names::is_canonical("serve.errors.")); // bare prefix
        assert!(names::is_canonical("serve.errors.parse"));
    }
}

//! Harness binary for `experiments::baselines`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::baselines::run(quick));
}

//! Harness binary for `experiments::robustness`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::robustness::run(quick));
}

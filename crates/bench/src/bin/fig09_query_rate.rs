//! Harness binary for `experiments::query_rate`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!("{}", polygamy_bench::experiments::query_rate::run(quick));
}

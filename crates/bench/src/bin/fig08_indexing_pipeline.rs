//! Harness binary for `experiments::indexing_pipeline`. Pass `--quick` for a reduced
//! workload.

fn main() {
    let quick = polygamy_bench::quick_mode();
    print!(
        "{}",
        polygamy_bench::experiments::indexing_pipeline::run(quick)
    );
}

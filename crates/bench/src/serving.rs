//! Served-query throughput: coalesced vs serial dispatch.
//!
//! Measures the serving layer end to end — real daemon, real localhost
//! sockets, N concurrent clients — in two configurations of the *same*
//! build: batch coalescing on (the default) and off (`--no-coalesce`,
//! every request pays its own `query_many` dispatch). Each mode gets a
//! **fresh** [`StoreSession`] so both start with cold segment and query
//! caches; the difference is purely how requests reach the executor.
//!
//! The numbers land in the committed `BENCH_<date>.json` snapshots (the
//! `serving` section) and in the `loadgen --self-serve` report.

use polygamy_serve::{Client, CoalesceStats, Response, ServeOptions, Server};
use polygamy_store::StoreSession;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One complete coalesced-vs-serial measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingMeasurement {
    /// Concurrent client connections per mode.
    pub clients: usize,
    /// Queries served per mode (clients × requests × queries/request).
    pub queries_total: u64,
    /// Served queries per second with coalescing on.
    pub qps_coalesced: f64,
    /// Served queries per second with serial per-request dispatch.
    pub qps_serial: f64,
    /// Dispatcher stats of the coalesced run.
    pub coalesced: CoalesceStats,
}

/// Drives one server in one mode and returns (queries served, seconds,
/// final stats).
fn drive(
    store_path: &Path,
    coalesce: bool,
    clients: usize,
    requests_per_client: usize,
    queries: &[String],
) -> Result<(u64, f64, CoalesceStats), String> {
    // A fresh session per mode: cold caches, so neither mode inherits the
    // other's warm-up.
    let session = Arc::new(StoreSession::open(store_path).map_err(|e| e.to_string())?);
    let opts = ServeOptions {
        coalesce,
        ..ServeOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", session, opts).map_err(|e| e.to_string())?;
    let addr = server.local_addr();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let queries: Vec<String> = queries.to_vec();
            std::thread::spawn(move || -> Result<u64, String> {
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                let mut served = 0u64;
                for r in 0..requests_per_client {
                    // Stagger which query each client leads with so the
                    // coalescer sees mixed batches, like real analysts.
                    let q = &queries[(c + r) % queries.len()];
                    match client.request(q).map_err(|e| e.to_string())? {
                        Response::Results(_) => served += 1,
                        Response::Error(e) => {
                            return Err(format!("server error: {}: {}", e.error, e.message))
                        }
                    }
                }
                Ok(served)
            })
        })
        .collect();
    let mut served = 0u64;
    for h in handles {
        served += h.join().map_err(|_| "client thread panicked")??;
    }
    let elapsed = t0.elapsed().as_secs_f64();

    server.shutdown();
    let stats = server.wait();
    Ok((served, elapsed, stats))
}

/// Measures served-query throughput over the store at `store_path`:
/// `clients` concurrent connections each issuing `requests_per_client`
/// single-query requests drawn round-robin from `queries`, once against a
/// coalescing server and once against a serial-dispatch server.
pub fn measure_serving(
    store_path: &Path,
    clients: usize,
    requests_per_client: usize,
    queries: &[String],
) -> Result<ServingMeasurement, String> {
    if queries.is_empty() {
        return Err("measure_serving: no queries".into());
    }
    let (served_serial, serial_secs, _) =
        drive(store_path, false, clients, requests_per_client, queries)?;
    let (served_coalesced, coalesced_secs, coalesced) =
        drive(store_path, true, clients, requests_per_client, queries)?;
    if served_serial != served_coalesced {
        return Err(format!(
            "modes served different request counts: serial {served_serial}, \
             coalesced {served_coalesced}"
        ));
    }
    Ok(ServingMeasurement {
        clients,
        queries_total: coalesced.queries,
        qps_coalesced: served_coalesced as f64 / coalesced_secs.max(1e-9),
        qps_serial: served_serial as f64 / serial_secs.max(1e-9),
        coalesced,
    })
}

//! Section 6.3 + Appendix E.2 — interesting relationships: the headline
//! findings, each matched against the paper's reported τ/ρ.

use crate::{fnum, Table};
use polygamy_core::prelude::*;
use polygamy_core::Relationship;

struct Finding {
    left: &'static str,
    right: &'static str,
    paper: &'static str,
    expect_sign: f64,
    class: Option<FeatureClass>,
}

const FINDINGS: &[Finding] = &[
    Finding {
        left: "taxi.density",
        right: "weather.avg(precipitation)",
        paper: "τ=-0.62 ρ=0.75 (hour, city)",
        expect_sign: -1.0,
        class: None,
    },
    Finding {
        left: "taxi.avg(fare)",
        right: "weather.avg(precipitation)",
        paper: "τ=0.73 ρ=0.70 (hour, city)",
        expect_sign: 1.0,
        class: None,
    },
    Finding {
        left: "taxi.density",
        right: "weather.avg(wind-speed)",
        paper: "τ=-1.0 ρ=0.13 extreme",
        expect_sign: -1.0,
        class: Some(FeatureClass::Extreme),
    },
    Finding {
        left: "taxi.unique",
        right: "weather.avg(precipitation)",
        paper: "τ=-0.81 (day, city)",
        expect_sign: -1.0,
        class: None,
    },
    Finding {
        left: "citibike.avg(duration-min)",
        right: "weather.avg(snow-fall)",
        paper: "τ=0.61 ρ=0.16 (hour, city)",
        expect_sign: 1.0,
        class: None,
    },
    Finding {
        left: "citibike.unique",
        right: "weather.avg(snow-depth)",
        paper: "τ=-0.62 ρ=0.45 (day, city)",
        expect_sign: -1.0,
        class: None,
    },
    Finding {
        left: "collisions.avg(motorists-injured)",
        right: "weather.avg(precipitation)",
        paper: "τ=0.90 ρ=0.95 (killed)",
        expect_sign: 1.0,
        class: None,
    },
    Finding {
        left: "taxi.density",
        right: "traffic-speed.avg(speed-kmh)",
        paper: "τ=-0.90 ρ=0.65 (hour, city)",
        expect_sign: -1.0,
        class: None,
    },
    Finding {
        left: "collisions.density",
        right: "complaints-311.density",
        paper: "τ=0.99 ρ=0.86 (hour, nbhd)",
        expect_sign: 1.0,
        class: None,
    },
    Finding {
        left: "complaints-311.density",
        right: "calls-911.density",
        paper: "τ=0.92 ρ=0.27 (day, nbhd)",
        expect_sign: 1.0,
        class: None,
    },
    Finding {
        left: "taxi.avg(fare)",
        right: "gas-prices.avg(price)",
        paper: "τ=1.0 ρ=0.5 (month, city)",
        expect_sign: 1.0,
        class: None,
    },
];

fn best_match<'a>(rels: &'a [Relationship], f: &Finding) -> Option<&'a Relationship> {
    rels.iter()
        .filter(|r| {
            let l = r.left.to_string();
            let rr = r.right.to_string();
            ((l == f.left && rr == f.right) || (l == f.right && rr == f.left))
                && f.class.is_none_or(|c| c == r.class)
                && r.score() * f.expect_sign > 0.0
        })
        .max_by(|a, b| {
            // Prefer significant, then largest |τ| with meaningful ρ.
            a.significant
                .cmp(&b.significant)
                .then((a.score().abs() + a.strength()).total_cmp(&(b.score().abs() + b.strength())))
        })
}

/// Reproduces the Section 6.3 findings table.
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Section 6.3 — interesting relationships\n\n");
    let (_c, dp) = super::indexed(quick);
    let clause = Clause::default()
        .permutations(super::permutations(quick))
        .include_insignificant();

    let mut t = Table::new(&["relationship", "paper", "our best (sign-matching)", "found"]);
    let mut found_count = 0;
    for f in FINDINGS {
        let (d1, d2) = (
            f.left.split('.').next().expect("dataset.function"),
            f.right.split('.').next().expect("dataset.function"),
        );
        let rels = dp
            .query(&RelationshipQuery::between(&[d1], &[d2]).with_clause(clause.clone()))
            .expect("query succeeds");
        match best_match(&rels, f) {
            Some(r) => {
                found_count += 1;
                t.row(&[
                    format!("{} ~ {}", f.left, f.right),
                    f.paper.into(),
                    format!(
                        "τ={} ρ={} {} [{}]{}",
                        fnum(r.score(), 2),
                        fnum(r.strength(), 2),
                        r.resolution,
                        r.class.label(),
                        if r.significant { "" } else { " (ns)" }
                    ),
                    "yes".into(),
                ]);
            }
            None => {
                t.row(&[
                    format!("{} ~ {}", f.left, f.right),
                    f.paper.into(),
                    "-".into(),
                    "NO".into(),
                ]);
            }
        }
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nRecovered {found_count}/{} findings with matching sign.\n",
        FINDINGS.len()
    ));

    // Spurious relationships that significance testing should prune
    // (paper: tax ~ weather/311/911; bikes ~ tweets; 311 ~ speed).
    out.push_str("\n## Spurious-candidate pruning\n");
    let mut t2 = Table::new(&["pair", "candidates |τ|>=0.6", "surviving significance"]);
    for (d1, d2) in [("citibike", "twitter"), ("complaints-311", "traffic-speed")] {
        let all = dp
            .query(
                &RelationshipQuery::between(&[d1], &[d2])
                    .with_clause(clause.clone().min_score(0.6)),
            )
            .expect("query succeeds");
        let surviving = all.iter().filter(|r| r.significant).count();
        t2.row(&[
            format!("{d1} ~ {d2}"),
            all.len().to_string(),
            surviving.to_string(),
        ]);
    }
    out.push_str(&t2.render());
    out.push_str(
        "\nPaper: high-score candidates between unrelated data sets (bike\n\
         trips ~ tweets τ=0.87) are mostly random and fail the restricted\n\
         Monte Carlo test.\n",
    );
    out
}

//! Section 5.4 — space overhead of scalar functions and features vs the
//! raw data.
//!
//! Since the `polygamy-store` crate, the "index size" column is *measured*:
//! the index is written to an actual store file and the reported bytes are
//! the segment sizes in its manifest plus the whole-file footprint —
//! checksums, directory and all — rather than in-memory estimates.

use crate::{human_bytes, Table};
use polygamy_store::Store;

/// Reports raw vs field vs feature vs on-disk storage.
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Section 5.4 — space overhead\n\n");
    out.push_str(
        "Paper: 5 years of raw taxi data = 108 GB; all scalar functions\n\
         over 8 resolutions = 417 MB; all features = 8 MB. Shape: raw >>\n\
         fields >> features.\n\n",
    );
    let (_c, dp) = super::indexed(quick);
    let index = dp.index().expect("index built");

    // Write the real store and measure it.
    let path = std::env::temp_dir().join(format!(
        "polygamy-space-overhead-{}.plst",
        std::process::id()
    ));
    let store = Store::save(&path, dp.geometry(), index).expect("store write succeeds");
    let file_bytes = store.file_bytes().expect("store metadata");
    let manifest = store.manifest();

    let mut t = Table::new(&[
        "data set",
        "raw",
        "fields",
        "features",
        "on-disk",
        "tree nodes",
    ]);
    for (di, entry) in index.datasets.iter().enumerate() {
        let fields: usize = index
            .functions_of(di)
            .filter_map(|f| f.field.as_ref().map(|x| x.approx_bytes()))
            .sum();
        let features: usize = index.functions_of(di).map(|f| f.feature_bytes()).sum();
        let nodes: usize = index.functions_of(di).map(|f| f.tree_nodes).sum();
        t.row(&[
            entry.meta.name.clone(),
            human_bytes(entry.raw_bytes),
            human_bytes(fields),
            human_bytes(features),
            human_bytes(manifest.dataset_disk_bytes(di) as usize),
            nodes.to_string(),
        ]);
    }
    out.push_str(&t.render());
    let stats = index.stats();
    out.push_str(&format!(
        "\nTotals: raw {} | fields {} | features {} | store file {} (measured on disk)\n",
        human_bytes(stats.raw_bytes),
        human_bytes(stats.field_bytes),
        human_bytes(stats.feature_bytes),
        human_bytes(file_bytes as usize),
    ));
    out.push_str(&format!(
        "features/fields ratio: {:.2} (bitvectors are ~1/16 of f64 fields)\n",
        stats.feature_bytes as f64 / stats.field_bytes.max(1) as f64
    ));
    let segment_bytes: u64 = (0..index.datasets.len())
        .map(|di| manifest.dataset_disk_bytes(di))
        .sum();
    out.push_str(&format!(
        "store overhead beyond segments (header + geometry + manifest): {}\n",
        human_bytes((file_bytes - segment_bytes) as usize),
    ));
    out.push_str(&format!(
        "Note: at synthetic scale={}, raw volume is far below the paper's\n\
         (record count scales with `scale`, domain size does not).\n",
        if quick { 0.05 } else { 0.2 }
    ));
    let _ = std::fs::remove_file(&path);
    out
}

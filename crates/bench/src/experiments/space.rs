//! Section 5.4 — space overhead of scalar functions and features vs the
//! raw data.

use crate::{human_bytes, Table};

/// Reports raw vs field vs feature storage.
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Section 5.4 — space overhead\n\n");
    out.push_str(
        "Paper: 5 years of raw taxi data = 108 GB; all scalar functions\n\
         over 8 resolutions = 417 MB; all features = 8 MB. Shape: raw >>\n\
         fields >> features.\n\n",
    );
    let (_c, dp) = super::indexed(quick);
    let index = dp.index().expect("index built");
    let mut t = Table::new(&["data set", "raw", "fields", "features", "tree nodes"]);
    for (di, entry) in index.datasets.iter().enumerate() {
        let fields: usize = index
            .functions_of(di)
            .filter_map(|f| f.field.as_ref().map(|x| x.approx_bytes()))
            .sum();
        let features: usize = index.functions_of(di).map(|f| f.feature_bytes()).sum();
        let nodes: usize = index.functions_of(di).map(|f| f.tree_nodes).sum();
        t.row(&[
            entry.meta.name.clone(),
            human_bytes(entry.raw_bytes),
            human_bytes(fields),
            human_bytes(features),
            nodes.to_string(),
        ]);
    }
    out.push_str(&t.render());
    let stats = index.stats();
    out.push_str(&format!(
        "\nTotals: raw {} | fields {} | features {}\n",
        human_bytes(stats.raw_bytes),
        human_bytes(stats.field_bytes),
        human_bytes(stats.feature_bytes),
    ));
    out.push_str(&format!(
        "features/fields ratio: {:.2} (bitvectors are ~1/16 of f64 fields)\n",
        stats.feature_bytes as f64 / stats.field_bytes.max(1) as f64
    ));
    out.push_str(&format!(
        "Note: at synthetic scale={}, raw volume is far below the paper's\n\
         (record count scales with `scale`, domain size does not).\n",
        if quick { 0.05 } else { 0.2 }
    ));
    out
}

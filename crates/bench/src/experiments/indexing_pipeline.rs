//! Figure 8 — scalar-function computation + feature identification time
//! with increasing numbers of data sets (a: urban, b: open).

use crate::{fnum, Table};
use polygamy_core::prelude::*;
use polygamy_datagen::{open_collection, OpenConfig};

/// Measures cumulative indexing cost as data sets are added.
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Figure 8 — indexing and feature identification\n\n");
    out.push_str(
        "Paper shape (a): cost jumps when the large many-attribute data\n\
         sets (taxi; 228-attribute weather) join. (b): for many small data\n\
         sets, feature identification dominates scalar computation.\n\n",
    );

    // (a) Urban collection, one data set at a time.
    let c = super::urban(quick);
    out.push_str("## (a) urban collection\n");
    let mut t = Table::new(&[
        "#data sets",
        "last added",
        "scalar (s)",
        "features (s)",
        "#functions",
    ]);
    let mut dp = DataPolygamy::new(
        c.geometry().clone(),
        polygamy_core::framework::Config::default(),
    );
    for (i, d) in c.datasets.iter().enumerate() {
        dp.add_dataset(d.clone());
        let report = dp.build_index();
        let scalar: f64 = report.per_dataset.iter().map(|s| s.scalar_secs).sum();
        let features: f64 = report.per_dataset.iter().map(|s| s.feature_secs).sum();
        let n_functions: usize = report.per_dataset.iter().map(|s| s.n_functions).sum();
        t.row(&[
            (i + 1).to_string(),
            d.meta.name.clone(),
            fnum(scalar, 2),
            fnum(features, 2),
            n_functions.to_string(),
        ]);
    }
    out.push_str(&t.render());

    // (b) Open corpus prefixes.
    let open = open_collection(OpenConfig {
        n_datasets: if quick { 12 } else { 40 },
        ..OpenConfig::default()
    });
    out.push_str("\n## (b) open corpus\n");
    let mut t2 = Table::new(&["#data sets", "scalar (s)", "features (s)", "#functions"]);
    let sizes: Vec<usize> = if quick {
        vec![4, 8, 12]
    } else {
        vec![10, 20, 30, 40]
    };
    for &n in &sizes {
        let mut dp = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            polygamy_core::framework::Config::default(),
        );
        for d in open.datasets.iter().take(n) {
            dp.add_dataset(d.clone());
        }
        let report = dp.build_index();
        let scalar: f64 = report.per_dataset.iter().map(|s| s.scalar_secs).sum();
        let features: f64 = report.per_dataset.iter().map(|s| s.feature_secs).sum();
        let n_functions: usize = report.per_dataset.iter().map(|s| s.n_functions).sum();
        t2.row(&[
            n.to_string(),
            fnum(scalar, 2),
            fnum(features, 2),
            n_functions.to_string(),
        ]);
    }
    out.push_str(&t2.render());
    out
}

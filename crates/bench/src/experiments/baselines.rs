//! Section 6.4 + Appendix D — comparison against PCC, MI and DTW.
//!
//! The baselines see the city-resolution time series only. Expectation
//! (paper): they catch global relationships (snow ~ bike duration, taxi ~
//! speed) but miss event-conditioned ones (rain ~ #taxis visible only
//! during rain) and inherently miss spatial ones (collisions ~ taxis per
//! neighborhood).

use crate::{fnum, Table};
use polygamy_core::pipeline::field_features;
use polygamy_core::relationship::evaluate_features;
use polygamy_stats::baselines::BaselineScores;
use polygamy_stdata::{aggregate, AggregateKind, Dataset, FunctionKind, TemporalResolution};

fn series(
    d: &Dataset,
    city: &polygamy_stdata::SpatialPartition,
    kind: FunctionKind,
    temporal: TemporalResolution,
    window: (i64, i64),
) -> Vec<f64> {
    aggregate(d, city, temporal, kind, Some(window))
        .expect("aggregates")
        .collapse_space(true)
}

fn attr_kind(d: &Dataset, name: &str) -> FunctionKind {
    FunctionKind::Attribute {
        attr: d.attribute_index(name).expect("attribute exists"),
        agg: AggregateKind::Mean,
    }
}

/// Runs the baseline comparison.
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Section 6.4 — standard techniques comparison\n\n");
    let c = super::urban(quick);
    let city = &c.geometry().city;
    let window = (c.trace.start, c.trace.end());
    let taxi = c.dataset("taxi").expect("generated");
    let weather = c.dataset("weather").expect("generated");
    let bike = c.dataset("citibike").expect("generated");
    let traffic = c.dataset("traffic-speed").expect("generated");

    // Pairs: (label, series a, series b, paper verdict).
    let hourly = TemporalResolution::Hour;
    let pairs: Vec<(&str, Vec<f64>, Vec<f64>, &str)> = vec![
        (
            "snow-fall ~ bike duration",
            series(
                weather,
                city,
                attr_kind(weather, "snow-fall"),
                hourly,
                window,
            ),
            series(bike, city, attr_kind(bike, "duration-min"), hourly, window),
            "found by PCC and MI",
        ),
        (
            "taxi trips ~ traffic speed",
            series(taxi, city, FunctionKind::Density, hourly, window),
            series(
                traffic,
                city,
                attr_kind(traffic, "speed-kmh"),
                hourly,
                window,
            ),
            "found by PCC and DTW",
        ),
        (
            "rain ~ #taxis (event-conditioned)",
            series(
                weather,
                city,
                attr_kind(weather, "precipitation"),
                hourly,
                window,
            ),
            series(taxi, city, FunctionKind::Unique, hourly, window),
            "missed by all baselines",
        ),
        (
            "wind ~ taxi trips (event-conditioned)",
            series(
                weather,
                city,
                attr_kind(weather, "wind-speed"),
                hourly,
                window,
            ),
            series(taxi, city, FunctionKind::Density, hourly, window),
            "missed by all baselines",
        ),
    ];

    let mut t = Table::new(&[
        "pair",
        "PCC",
        "MI",
        "DTW",
        "polygamy τ (salient/extreme)",
        "paper verdict",
    ]);
    let adjacency = vec![vec![]];
    for (label, a, b, verdict) in &pairs {
        let scores = BaselineScores::of(a, b);
        // Data Polygamy's view of the same pair.
        let fa = polygamy_stdata::ScalarField::time_series(
            polygamy_stdata::Resolution::new(polygamy_stdata::SpatialResolution::City, hourly),
            hourly.bucket_of(window.0),
            a.clone(),
        );
        let fb = polygamy_stdata::ScalarField::time_series(
            polygamy_stdata::Resolution::new(polygamy_stdata::SpatialResolution::City, hourly),
            hourly.bucket_of(window.0),
            b.clone(),
        );
        let (feat_a, _, _) = field_features(&adjacency, &fa);
        let (feat_b, _, _) = field_features(&adjacency, &fb);
        let salient = evaluate_features(&feat_a.salient, &feat_b.salient);
        let extreme = evaluate_features(&feat_a.extreme, &feat_b.extreme);
        t.row(&[
            label.to_string(),
            fnum(scores.pcc, 2),
            fnum(scores.mi, 2),
            fnum(scores.dtw, 2),
            format!("{} / {}", fnum(salient.score, 2), fnum(extreme.score, 2)),
            verdict.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: |PCC| near 0 on the event-conditioned pairs while the\n\
         polygamy extreme/salient τ is strongly signed reproduces the\n\
         paper's claim that global techniques miss relationships that are\n\
         only visible under unusual conditions. Spatial relationships\n\
         (collisions ~ taxis per neighborhood) are invisible to all three\n\
         baselines by construction: they consume one city-level series.\n",
    );
    out
}

//! One module per paper table/figure. Each exposes `run(quick) -> String`.

pub mod baselines;
pub mod collection;
pub mod correctness;
pub mod index_scaling;
pub mod indexing_pipeline;
pub mod join_tree;
pub mod motivation;
pub mod persistence;
pub mod pruning;
pub mod query_rate;
pub mod relationships;
pub mod resolutions;
pub mod robustness;
pub mod space;
pub mod speedup;

use polygamy_core::prelude::*;
use polygamy_datagen::{urban_collection, UrbanCollection, UrbanConfig};

/// Standard NYC-Urban analogue used by the experiments: 2 simulated years;
/// quick mode shrinks the record volume.
pub fn urban(quick: bool) -> UrbanCollection {
    urban_collection(UrbanConfig {
        n_years: 2,
        scale: if quick { 0.05 } else { 0.2 },
        extra_weather_attrs: if quick { 0 } else { 8 },
        ..UrbanConfig::default()
    })
}

/// Builds and indexes the standard collection.
pub fn indexed(quick: bool) -> (UrbanCollection, DataPolygamy) {
    let collection = urban(quick);
    let mut dp = DataPolygamy::new(
        collection.geometry().clone(),
        polygamy_core::framework::Config::default(),
    );
    for d in collection.datasets.iter() {
        dp.add_dataset(d.clone());
    }
    dp.build_index();
    (collection, dp)
}

/// Monte Carlo permutation count for queries (paper: 1,000).
pub fn permutations(quick: bool) -> usize {
    if quick {
        100
    } else {
        1_000
    }
}

//! Figure 12 + Appendix Figures I–III — robustness to IQR-bounded noise
//! for four taxi scalar functions.

use crate::{fnum, Table};
use polygamy_core::pipeline::field_features;
use polygamy_core::relationship::evaluate_features;
use polygamy_datagen::add_iqr_noise;
use polygamy_stdata::{aggregate, AggregateKind, FunctionKind, TemporalResolution};

/// Sweeps noise levels for density/unique/avg(miles)/avg(fare).
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Figure 12 + App. I–III — robustness to noise\n\n");
    out.push_str(
        "Paper: score stays 1.0 up to ~2% noise and the relationship stays\n\
         strong/significant at 10% (persistence-based thresholds absorb\n\
         small extrema created by noise).\n\n",
    );
    let c = super::urban(quick);
    let taxi = c.dataset("taxi").expect("taxi generated");
    let adjacency = vec![vec![]];
    let functions: Vec<(&str, FunctionKind)> = vec![
        ("density", FunctionKind::Density),
        ("unique", FunctionKind::Unique),
        (
            "avg(miles)",
            FunctionKind::Attribute {
                attr: taxi.attribute_index("miles").expect("attr"),
                agg: AggregateKind::Mean,
            },
        ),
        (
            "avg(fare)",
            FunctionKind::Attribute {
                attr: taxi.attribute_index("fare").expect("attr"),
                agg: AggregateKind::Mean,
            },
        ),
    ];
    let noise_levels = [0.0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10];
    for (name, kind) in functions {
        out.push_str(&format!("## taxi.{name} (hour, city)\n"));
        let field = aggregate(
            taxi,
            &c.geometry().city,
            TemporalResolution::Hour,
            kind,
            None,
        )
        .expect("aggregates");
        let (clean, _, _) = field_features(&adjacency, &field);
        let mut t = Table::new(&["noise %", "score τ", "strength ρ"]);
        for &frac in &noise_levels {
            let noisy_field = add_iqr_noise(&field, frac, 0xF1612 ^ (frac * 1000.0) as u64);
            let (noisy, _, _) = field_features(&adjacency, &noisy_field);
            let m = evaluate_features(&clean.salient, &noisy.salient);
            t.row(&[
                format!("{:.0}", frac * 100.0),
                fnum(m.score, 3),
                fnum(m.strength, 3),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

//! Figure 9 — relationship-evaluation rate with increasing numbers of data
//! sets.

use crate::{fnum, timed, Table};
use polygamy_core::prelude::*;

/// Measures candidate evaluations per minute for growing corpus prefixes.
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Figure 9 — query performance\n\n");
    out.push_str(
        "Paper: rate stabilises above ~10^4 relationships/minute and is\n\
         independent of raw data size (evaluation touches only features).\n\
         >90% of query time goes to the significance tests.\n\n",
    );
    let c = super::urban(quick);
    let perms = if quick { 60 } else { 200 };
    let mut t = Table::new(&[
        "#data sets",
        "#relationships evaluated",
        "time (s)",
        "rel/min",
    ]);
    let sizes: Vec<usize> = if quick {
        vec![3, 5, 7, 9]
    } else {
        vec![2, 4, 6, 8, 9]
    };
    let mut rates = Vec::new();
    for &n in &sizes {
        let mut dp = DataPolygamy::new(
            c.geometry().clone(),
            polygamy_core::framework::Config::default(),
        );
        for d in c.datasets.iter().take(n) {
            dp.add_dataset(d.clone());
        }
        dp.build_index();
        let query = RelationshipQuery::all().with_clause(
            Clause::default()
                .permutations(perms)
                .include_insignificant(),
        );
        let (rels, secs) = timed(|| dp.query(&query).expect("query succeeds"));
        let rate = rels.len() as f64 / secs * 60.0;
        rates.push(rate);
        t.row(&[
            n.to_string(),
            rels.len().to_string(),
            fnum(secs, 2),
            fnum(rate, 0),
        ]);
    }
    out.push_str(&t.render());
    let spread = rates.iter().cloned().fold(0.0, f64::max)
        / rates
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
    out.push_str(&format!(
        "\nRate spread (max/min): {:.1}x — the paper's curve flattens once\n\
         enough pairs amortise fixed costs.\n",
        spread
    ));
    out
}

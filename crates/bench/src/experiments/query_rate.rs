//! Figure 9 — relationship-evaluation rate with increasing numbers of data
//! sets, measured on the serial path (one worker) and on the flat parallel
//! executor (all host cores on one shared pool).

use crate::{fnum, timed, Table};
use polygamy_core::cache::{QueryCache, DEFAULT_QUERY_CACHE_CAPACITY};
use polygamy_core::pql::{parse_query, to_pql};
use polygamy_core::prelude::*;
use polygamy_core::run_query;
use polygamy_mapreduce::Cluster;
use std::hint::black_box;

/// Measures candidate evaluations per minute for growing corpus prefixes,
/// serial vs flat-parallel.
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Figure 9 — query performance\n\n");
    out.push_str(
        "Paper: rate stabilises above ~10^4 relationships/minute and is\n\
         independent of raw data size (evaluation touches only features).\n\
         >90% of query time goes to the significance tests — which the flat\n\
         executor spreads over one shared worker pool per query. The last\n\
         column prices the PQL textual frontend: microseconds to compile\n\
         the query from its canonical text, against seconds to run it.\n\n",
    );
    let c = super::urban(quick);
    let perms = if quick { 60 } else { 200 };
    let mut t = Table::new(&[
        "#data sets",
        "#relationships evaluated",
        "serial (s)",
        "flat (s)",
        "serial rel/min",
        "flat rel/min",
        "speedup",
        "pql parse (µs)",
    ]);
    let sizes: Vec<usize> = if quick {
        vec![3, 5, 7, 9]
    } else {
        vec![2, 4, 6, 8, 9]
    };
    let mut rates = Vec::new();
    let mut speedups = Vec::new();
    for &n in &sizes {
        let mut dp = DataPolygamy::new(
            c.geometry().clone(),
            polygamy_core::framework::Config::default(),
        );
        for d in c.datasets.iter().take(n) {
            dp.add_dataset(d.clone());
        }
        dp.build_index();
        let index = dp.index().expect("index built");
        let query = RelationshipQuery::all().with_clause(
            Clause::default()
                .permutations(perms)
                .include_insignificant(),
        );
        // Same index, fresh cache per run, only the worker count differs —
        // the flat executor guarantees identical results either way.
        let run_with = |cluster: Cluster| {
            let config = polygamy_core::framework::Config {
                cluster,
                ..polygamy_core::framework::Config::default()
            };
            let cache = QueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY);
            timed(|| {
                run_query(index, dp.geometry(), &config, &cache, &query).expect("query succeeds")
            })
        };
        let (serial_rels, serial_secs) = run_with(Cluster::local(1));
        let (flat_rels, flat_secs) = run_with(Cluster::host());
        assert_eq!(serial_rels, flat_rels, "executor is worker-independent");
        let serial_rate = serial_rels.len() as f64 / serial_secs * 60.0;
        let flat_rate = flat_rels.len() as f64 / flat_secs * 60.0;
        let speedup = serial_secs / flat_secs.max(1e-9);
        // Parse + plan overhead of the textual frontend: compile the same
        // query from its canonical PQL text. Amortised over repeats so the
        // number is stable at microsecond scale.
        let pql = to_pql(&query);
        let parse_repeats = 2_000u32;
        let (_, parse_total) = timed(|| {
            for _ in 0..parse_repeats {
                black_box(parse_query(black_box(&pql)).expect("canonical PQL parses"));
            }
        });
        let parse_us = parse_total * 1e6 / f64::from(parse_repeats);
        rates.push(flat_rate);
        speedups.push(speedup);
        t.row(&[
            n.to_string(),
            flat_rels.len().to_string(),
            fnum(serial_secs, 2),
            fnum(flat_secs, 2),
            fnum(serial_rate, 0),
            fnum(flat_rate, 0),
            format!("{speedup:.1}x"),
            fnum(parse_us, 2),
        ]);
    }
    out.push_str(&t.render());
    let spread = rates.iter().cloned().fold(0.0, f64::max)
        / rates
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
    let best = speedups.iter().cloned().fold(0.0, f64::max);
    out.push_str(&format!(
        "\nRate spread (max/min, flat): {:.1}x — the paper's curve flattens\n\
         once enough pairs amortise fixed costs. Best flat-over-serial\n\
         speedup: {:.1}x on {} host cores (identical results at every\n\
         worker count).\n",
        spread,
        best,
        Cluster::host().workers(),
    ));
    out
}

//! Figure 7 — merge-tree index creation and feature-query time vs input
//! size, for city (1-D) and neighborhood (3-D) domains.

use crate::{fnum, timed, Table};
use polygamy_stdata::temporal::SeasonalInterval;
use polygamy_stdata::{Resolution, ScalarField, SpatialResolution, TemporalResolution};
use polygamy_topology::{seasonal_thresholds, DomainGraph, FeatureSets, MergeTree};

fn taxi_like_series(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let hod = (i % 24) as f64;
            let diurnal = 40.0 * (0.2 + (-((hod - 19.0) / 3.5).powi(2)).exp());
            let noise = (((i as u64).wrapping_mul(seed | 1) % 997) as f64) / 997.0 * 8.0;
            diurnal + noise
        })
        .collect()
}

/// Measures index creation + feature-query time over growing domains.
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Figure 7 — merge-tree index creation and feature querying\n\n");
    out.push_str(
        "Paper: both times are near-linear in the number of edges; <2 min\n\
         at 30M edges on one node. Shape check: time/edge stays flat.\n\n",
    );
    let steps_list: &[usize] = if quick {
        &[10_000, 40_000, 160_000]
    } else {
        &[10_000, 40_000, 160_000, 640_000, 2_560_000]
    };
    for (label, n_regions) in [("city (1-D)", 1usize), ("neighborhood (3-D)", 40)] {
        out.push_str(&format!("## {label}\n"));
        let mut t = Table::new(&["edges", "index (ms)", "query (ms)", "ns/edge index"]);
        // Grid-ish adjacency for the spatial case.
        let adjacency: Vec<Vec<u32>> = if n_regions == 1 {
            vec![vec![]]
        } else {
            let nx = 8;
            let mut adj = vec![Vec::new(); n_regions];
            for i in 0..n_regions {
                let (x, y) = (i % nx, i / nx);
                if x + 1 < nx && i + 1 < n_regions {
                    adj[i].push((i + 1) as u32);
                    adj[i + 1].push(i as u32);
                }
                if (y + 1) * nx + x < n_regions {
                    adj[i].push((i + nx) as u32);
                    adj[i + nx].push(i as u32);
                }
            }
            for a in &mut adj {
                a.sort_unstable();
            }
            adj
        };
        for &steps in steps_list {
            let n_steps = steps / n_regions.max(1);
            let values = taxi_like_series(n_regions * n_steps, 0x5EED);
            let res = Resolution::new(
                if n_regions == 1 {
                    SpatialResolution::City
                } else {
                    SpatialResolution::Neighborhood
                },
                TemporalResolution::Hour,
            );
            let field = ScalarField {
                resolution: res,
                n_regions,
                start_bucket: 0,
                n_steps,
                values,
            };
            let graph = DomainGraph::new(&adjacency, n_steps);
            let edges = graph.edge_count();
            // Index: join + split tree (paper: indexing time includes both).
            let ((join, split), index_s) = timed(|| {
                (
                    MergeTree::join(&graph, &field.values),
                    MergeTree::split(&graph, &field.values),
                )
            });
            // Query: thresholds + both feature classes (paper: querying
            // includes threshold computation and feature identification).
            let (_features, query_s) = timed(|| {
                let season = SeasonalInterval::for_resolution(res.temporal);
                let interval_of_step: Vec<i64> = (0..field.n_steps)
                    .map(|z| season.interval_of(field.step_start(z)))
                    .collect();
                let th = seasonal_thresholds(&join, &split, field.n_regions, &interval_of_step);
                FeatureSets::compute(&graph, &field.values, &join, &split, &th)
            });
            t.row(&[
                edges.to_string(),
                fnum(index_s * 1e3, 1),
                fnum(query_s * 1e3, 1),
                fnum(index_s * 1e9 / edges as f64, 0),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

//! Table 1 — properties of the NYC-Urban analogue collection.

use crate::{human_bytes, Table};
use polygamy_core::FunctionSpec;
use polygamy_stdata::temporal::date_of;

/// Prints the Table 1 analogue.
pub fn run(quick: bool) -> String {
    let c = super::urban(quick);
    let mut out = String::from("# Table 1 — the urban collection\n\n");
    out.push_str(
        "Paper collection: Gas Prices, Vehicle Collisions, 311, 911, Citi\n\
         Bike, NCEI Weather (228 attrs), Traffic Speed, Taxi (868M records),\n\
         Twitter. Synthetic analogue below (record volume set by `scale`).\n\n",
    );
    let mut t = Table::new(&[
        "data set",
        "size",
        "#records",
        "time range",
        "#scalar fns",
        "spatial res",
        "temporal res",
    ]);
    for d in &c.datasets {
        let (lo, hi) = d.time_range().expect("non-empty");
        let specs = FunctionSpec::enumerate(d).len();
        t.row(&[
            d.meta.name.clone(),
            human_bytes(d.approx_bytes()),
            d.len().to_string(),
            format!("{}..{}", date_of(lo).year, date_of(hi - 1).year),
            specs.to_string(),
            d.meta.spatial_resolution.label().to_string(),
            d.meta.temporal_resolution.label().to_string(),
        ]);
    }
    out.push_str(&t.render());
    let total: usize = c.datasets.iter().map(|d| d.len()).sum();
    out.push_str(&format!("\nTotal records: {total}\n"));
    out
}

//! Section 6.2 (Correctness) — the 2011 vs 2012 taxi-density control
//! experiment: both years, aligned on the same clock, must be strongly and
//! significantly positively related.

use crate::{fnum, Table};
use polygamy_core::prelude::*;
use polygamy_stdata::CivilDate;

/// Runs the year-over-year control at (hour, city) and (hour, neighborhood).
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Section 6.2 — correctness (taxi 2011 vs 2012)\n\n");
    out.push_str("Paper: (hour, city) τ=0.99 ρ=0.85; (hour, neighborhood) τ=1.0 ρ=0.87.\n\n");
    let c = super::urban(quick);
    let taxi = c.dataset("taxi").expect("taxi generated");
    let years = taxi.split_by_year();
    if years.len() < 2 {
        return out + "collection covers a single year; experiment skipped\n";
    }
    let (y1, d1) = &years[0];
    let (_, d2) = &years[1];
    // Shift year 2 back onto year 1's clock.
    let shift = CivilDate::new(y1 + 1, 1, 1).timestamp() - CivilDate::new(*y1, 1, 1).timestamp();
    let mut b = polygamy_stdata::DatasetBuilder::new(polygamy_stdata::DatasetMeta {
        name: "taxi-y2".into(),
        ..d2.meta.clone()
    });
    for a in &d2.attributes {
        b = b.attribute(a.clone());
    }
    for i in 0..d2.len() {
        let vals: Vec<f64> = (0..d2.attribute_count())
            .map(|a| d2.value_at(i, a).encode())
            .collect();
        b.push(d2.locations()[i], d2.times()[i] - shift, &vals)
            .expect("schema matches");
    }
    let d2s = b.build().expect("shifted year builds");

    let mut dp = DataPolygamy::new(
        c.geometry().clone(),
        polygamy_core::framework::Config::default(),
    );
    dp.add_dataset(d1.clone());
    dp.add_dataset(d2s);
    dp.build_index();
    let rels = dp
        .query(
            &RelationshipQuery::all().with_clause(
                Clause::default()
                    .permutations(super::permutations(quick))
                    .include_insignificant(),
            ),
        )
        .expect("query succeeds");

    let mut t = Table::new(&["resolution", "paper τ/ρ", "our τ", "our ρ", "significant"]);
    for (res, paper) in [
        (
            Resolution::new(SpatialResolution::City, TemporalResolution::Hour),
            "0.99 / 0.85",
        ),
        (
            Resolution::new(SpatialResolution::Neighborhood, TemporalResolution::Hour),
            "1.00 / 0.87",
        ),
    ] {
        let found = rels.iter().find(|r| {
            r.resolution == res
                && r.left.function == "density"
                && r.right.function == "density"
                && r.class == FeatureClass::Salient
        });
        match found {
            Some(r) => {
                t.row(&[
                    res.label(),
                    paper.into(),
                    fnum(r.score(), 2),
                    fnum(r.strength(), 2),
                    r.significant.to_string(),
                ]);
            }
            None => {
                t.row(&[
                    res.label(),
                    paper.into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    out.push_str(&t.render());
    out
}

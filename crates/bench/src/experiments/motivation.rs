//! Figure 1 — the motivating example: daily taxi trips over two years with
//! two hurricane-driven collapses, explained by wind speed.

use crate::{fnum, Table};
use polygamy_datagen::EventKind;
use polygamy_stdata::temporal::{date_of, SECS_PER_DAY};
use polygamy_stdata::{aggregate, FunctionKind, TemporalResolution};

/// Regenerates the Figure 1 series and verifies the drops align with the
/// planted hurricanes.
pub fn run(quick: bool) -> String {
    let c = super::urban(quick);
    let taxi = c.dataset("taxi").expect("taxi generated");
    let weather = c.dataset("weather").expect("weather generated");
    let daily_trips = aggregate(
        taxi,
        &c.geometry().city,
        TemporalResolution::Day,
        FunctionKind::Density,
        None,
    )
    .expect("taxi daily density");
    let wind_attr = weather.attribute_index("wind-speed").expect("attr");
    let daily_wind = aggregate(
        weather,
        &c.geometry().city,
        TemporalResolution::Day,
        FunctionKind::Attribute {
            attr: wind_attr,
            agg: polygamy_stdata::AggregateKind::Mean,
        },
        None,
    )
    .expect("wind daily mean");

    let trips = daily_trips.collapse_space(true);
    let wind = daily_wind.collapse_space(false);
    let mean_trips = polygamy_stats::mean(&trips);

    let mut out = String::from("# Figure 1 — taxi trips vs wind speed\n\n");
    out.push_str(
        "Paper: two large drops in daily taxi trips (Aug 2011, Oct 2012) on\n\
         days with unusually high wind speeds (hurricanes Irene and Sandy).\n\n",
    );
    let mut table = Table::new(&[
        "event",
        "peak wind (km/h)",
        "typical wind",
        "trip drop vs mean",
    ]);
    let typical_wind = polygamy_stats::quantile(&wind, 0.5);
    let mut all_aligned = true;
    for ev in c.events.of_kind(EventKind::Hurricane) {
        // Deepest trip day and max wind inside the event window.
        let d0 = (ev.start - daily_trips.step_start(0)) / SECS_PER_DAY;
        let d1 = (ev.end - daily_trips.step_start(0)) / SECS_PER_DAY + 1;
        let range = d0.max(0) as usize..(d1 as usize).min(trips.len());
        let min_trips = range
            .clone()
            .map(|i| trips[i])
            .fold(f64::INFINITY, f64::min);
        let max_wind = range.clone().map(|i| wind[i]).fold(0.0, f64::max);
        let drop = 1.0 - min_trips / mean_trips;
        if drop < 0.3 || max_wind < typical_wind * 2.0 {
            all_aligned = false;
        }
        table.row(&[
            ev.name.clone(),
            fnum(max_wind, 1),
            fnum(typical_wind, 1),
            format!("{:.0}%", drop * 100.0),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nDays simulated: {}  mean daily trips: {:.0}\n",
        trips.len(),
        mean_trips
    ));
    // Show the series around each hurricane (the Figure 1 inset).
    for ev in c.events.of_kind(EventKind::Hurricane) {
        out.push_str(&format!("\n## Series around {}\n", ev.name));
        let d_ev = (ev.start - daily_trips.step_start(0)) / SECS_PER_DAY;
        let mut t = Table::new(&["date", "trips", "wind km/h"]);
        for d in (d_ev - 3).max(0)..(d_ev + 5).min(trips.len() as i64) {
            let date = date_of(daily_trips.step_start(d as usize));
            t.row(&[
                date.to_string(),
                fnum(trips[d as usize], 0),
                fnum(wind[d as usize], 1),
            ]);
        }
        out.push_str(&t.render());
    }
    out.push_str(&format!(
        "\nShape check (drops >30% on >2x-wind days): {}\n",
        if all_aligned {
            "REPRODUCED"
        } else {
            "NOT REPRODUCED"
        }
    ));
    out
}

//! Figure 10 — speedup of the three framework components with increasing
//! cluster size (simulated as worker counts on this machine).

use crate::{fnum, timed, Table};
use polygamy_core::pipeline::{compute_scalar_functions, identify_features};
use polygamy_core::prelude::*;
use polygamy_mapreduce::Cluster;

/// Sweeps worker counts and reports per-component speedup vs 1 worker.
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Figure 10 — scalability (speedup vs workers)\n\n");
    out.push_str(
        "Paper: near-linear speedup for scalar-function computation; lower\n\
         for feature identification and relationship evaluation (straggler\n\
         reducers on the high-resolution functions).\n\n",
    );
    let c = super::urban(quick);
    let host = Cluster::host().workers();
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&w| w <= host.max(2))
        .collect();
    let perms = if quick { 40 } else { 120 };

    let mut base: Option<(f64, f64, f64)> = None;
    let mut t = Table::new(&[
        "workers",
        "scalar (s)",
        "features (s)",
        "query (s)",
        "speedup scalar",
        "speedup features",
        "speedup query",
    ]);
    for &w in &worker_counts {
        let cluster = Cluster::local(w);
        let config = polygamy_core::framework::Config {
            cluster,
            ..polygamy_core::framework::Config::default()
        };
        // Component 1+2 measured via the pipeline jobs directly.
        let geometry = c.geometry();
        let (fields_all, scalar_secs) = timed(|| {
            c.datasets
                .iter()
                .map(|d| compute_scalar_functions(cluster, geometry, d))
                .collect::<Vec<_>>()
        });
        let (_entries, feature_secs) = timed(|| {
            fields_all
                .into_iter()
                .enumerate()
                .map(|(di, fields)| identify_features(cluster, geometry, di, fields, false))
                .collect::<Vec<_>>()
        });
        // Component 3: a fixed query workload.
        let mut dp = DataPolygamy::new(geometry.clone(), config);
        for d in c.datasets.iter() {
            dp.add_dataset(d.clone());
        }
        dp.build_index();
        let query = RelationshipQuery::between(&["taxi", "weather", "collisions"], &[])
            .with_clause(
                Clause::default()
                    .permutations(perms)
                    .include_insignificant(),
            );
        let (_rels, query_secs) = timed(|| dp.query(&query).expect("query succeeds"));

        let (s0, f0, q0) = *base.get_or_insert((scalar_secs, feature_secs, query_secs));
        t.row(&[
            w.to_string(),
            fnum(scalar_secs, 2),
            fnum(feature_secs, 2),
            fnum(query_secs, 2),
            fnum(s0 / scalar_secs, 2),
            fnum(f0 / feature_secs, 2),
            fnum(q0 / query_secs, 2),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nHost parallelism: {host} cores; speedups saturate at the core count.\n"
    ));
    out
}

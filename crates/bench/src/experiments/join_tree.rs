//! Figures 2 + 4 — the worked 1-D example: super-level sets, join tree and
//! persistence pairing.

use crate::{fnum, Table};
use polygamy_topology::{super_level_set, BitVec, DomainGraph, MergeTree};

/// Reconstructs the paper's Figure 2/4 walkthrough and checks every number.
pub fn run(_quick: bool) -> String {
    // The Figure 2 function: creation order v8, v2, v4, v6; first merge at
    // v5 (see merge_tree unit tests for the derivation).
    let g = DomainGraph::time_series(9);
    let f = vec![0.0, 5.0, 2.5, 4.5, 3.0, 4.0, 1.0, 6.0, 0.5];
    let names = ["v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9"];
    let join = MergeTree::join(&g, &f);

    let mut out = String::from("# Figures 2 + 4 — join tree of the 1-D example\n\n");
    let mut t = Table::new(&["maximum", "f", "paired destroyer", "persistence"]);
    let mut pairs = join.pairs.clone();
    pairs.sort_by(|a, b| b.persistence().total_cmp(&a.persistence()));
    for p in &pairs {
        t.row(&[
            names[p.extremum as usize].to_string(),
            fnum(p.birth, 1),
            names[p.partner as usize].to_string(),
            fnum(p.persistence(), 1),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nLeaves (desc): {:?}  nodes: {}  arcs: {}\n",
        join.leaves
            .iter()
            .map(|&v| names[v as usize])
            .collect::<Vec<_>>(),
        join.node_count(),
        join.arc_count(),
    ));

    // Figure 2(b)/(c): component counts at f1 and f2.
    let count_components = |set: &BitVec| -> usize {
        let mut seen = BitVec::zeros(set.len());
        let mut n = 0;
        let mut stack = Vec::new();
        for v in set.iter_ones() {
            if seen.get(v) {
                continue;
            }
            n += 1;
            seen.set(v);
            stack.push(v);
            while let Some(x) = stack.pop() {
                for &u in g.neighbors(x) {
                    if set.get(u as usize) && !seen.get(u as usize) {
                        seen.set(u as usize);
                        stack.push(u as usize);
                    }
                }
            }
        }
        n
    };
    let at_f1 = count_components(&super_level_set(&g, &f, &join, 3.5));
    let at_f2 = count_components(&super_level_set(&g, &f, &join, 2.7));
    out.push_str(&format!(
        "\nSuper-level components at f1 (paper: 4): {at_f1}\nSuper-level components at f2 (paper: 3): {at_f2}\n"
    ));
    out.push_str(&format!(
        "Shape check: {}\n",
        if at_f1 == 4 && at_f2 == 3 {
            "REPRODUCED"
        } else {
            "NOT REPRODUCED"
        }
    ));
    out
}

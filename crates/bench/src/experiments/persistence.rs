//! Figure 5 — persistence diagram of taxi-density minima, the 2-means
//! persistence split, and the box-plot fence for extreme features.

use crate::{fnum, Table};
use polygamy_stats::descriptive::Summary;
use polygamy_stats::kmeans::two_means_1d;
use polygamy_stdata::{aggregate, FunctionKind, TemporalResolution};
use polygamy_topology::{DomainGraph, MergeTree};

/// Regenerates the Figure 5 data.
pub fn run(quick: bool) -> String {
    let c = super::urban(quick);
    let taxi = c.dataset("taxi").expect("taxi generated");
    let field = aggregate(
        taxi,
        &c.geometry().city,
        TemporalResolution::Hour,
        FunctionKind::Density,
        None,
    )
    .expect("hourly density");
    let g = DomainGraph::time_series(field.n_steps);
    let split = MergeTree::split(&g, &field.values);
    let persistences = split.persistence_values();

    let mut out = String::from("# Figure 5 — persistence of taxi-density minima\n\n");
    out.push_str(&format!("minima: {}\n", persistences.len()));
    let tm = two_means_1d(&persistences).expect("non-degenerate persistence set");
    out.push_str(&format!(
        "2-means split: low cluster {} minima (mean pi {:.1}), high cluster {} minima (mean pi {:.1})\n",
        tm.low_count, tm.low_mean, tm.high_count, tm.high_mean
    ));
    out.push_str(&format!(
        "separation ratio high/low: {:.1}x (paper: two clearly split groups)\n",
        tm.high_mean / tm.low_mean.max(1e-9)
    ));

    // Figure 5(c): distribution of salient-minima function values with the
    // box-plot outlier fence; hurricane hours must fall below it.
    let salient_values: Vec<f64> = split
        .pairs
        .iter()
        .filter(|p| tm.is_high(p.persistence()))
        .map(|p| p.birth)
        .collect();
    let s = Summary::of(&salient_values);
    let fence = s.lower_fence();
    let outliers = salient_values.iter().filter(|&&v| v < fence).count();
    let mut t = Table::new(&["Q1", "median", "Q3", "lower fence", "#outliers"]);
    t.row(&[
        fnum(s.q1, 1),
        fnum(s.median, 1),
        fnum(s.q3, 1),
        fnum(fence, 1),
        outliers.to_string(),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nPaper shape: extreme features (hurricane hours) are box-plot\n\
         outliers of the salient-minima value distribution.\n",
    );
    out.push_str(&format!(
        "Shape check (high-persistence cluster exists and is >=3x separated): {}\n",
        if tm.high_mean > 3.0 * tm.low_mean.max(1e-9) {
            "REPRODUCED"
        } else {
            "NOT REPRODUCED"
        }
    ));
    out
}

//! Figure 11 — relationship pruning: candidate relationships vs
//! statistically significant ones vs τ-filtered ones, at (week, city).

use crate::{fnum, Table};
use polygamy_core::prelude::*;
use polygamy_datagen::{open_collection, OpenConfig};
use polygamy_stdata::Resolution;

fn count_rels(
    dp: &DataPolygamy,
    resolution: Resolution,
    permutations: usize,
) -> (usize, usize, usize, usize) {
    let base = Clause::default()
        .permutations(permutations)
        .at_resolution(resolution);
    let all = dp
        .query(&RelationshipQuery::all().with_clause(base.clone().include_insignificant()))
        .expect("query succeeds");
    let significant = all.iter().filter(|r| r.significant).count();
    let t06 = all
        .iter()
        .filter(|r| r.significant && r.score().abs() >= 0.6)
        .count();
    let t08 = all
        .iter()
        .filter(|r| r.significant && r.score().abs() >= 0.8)
        .count();
    (all.len(), significant, t06, t08)
}

/// Counts candidates vs survivors for the urban and open corpora.
pub fn run(quick: bool) -> String {
    let mut out = String::from("# Figure 11 — relationship pruning at (week, city)\n\n");
    out.push_str(
        "Paper: urban 9,745 candidates -> 137 significant (-98.6%); τ>=0.6\n\
         -> -99%; τ>=0.8 -> -99.2%. Open: 2.4M possible -> 22,327 (-98.9%).\n\n",
    );
    let resolution = Resolution::new(SpatialResolution::City, TemporalResolution::Week);
    let perms = super::permutations(quick);

    // (a) urban
    let (_c, dp) = super::indexed(quick);
    let (cand, sig, t06, t08) = count_rels(&dp, resolution, perms);
    let mut t = Table::new(&[
        "corpus",
        "candidates",
        "significant",
        "τ>=0.6",
        "τ>=0.8",
        "pruned",
    ]);
    t.row(&[
        "urban".into(),
        cand.to_string(),
        sig.to_string(),
        t06.to_string(),
        t08.to_string(),
        format!(
            "{}%",
            fnum(100.0 * (1.0 - sig as f64 / cand.max(1) as f64), 1)
        ),
    ]);

    // (b) open corpus with ground truth.
    let open = open_collection(OpenConfig {
        n_datasets: if quick { 16 } else { 40 },
        ..OpenConfig::default()
    });
    let mut dp_open = DataPolygamy::new(
        CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
        polygamy_core::framework::Config::default(),
    );
    for d in &open.datasets {
        dp_open.add_dataset(d.clone());
    }
    dp_open.build_index();
    // Open data sets are hourly/daily; week-city is their common coarse
    // resolution like the paper's setting.
    let (cand_o, sig_o, t06_o, t08_o) = count_rels(&dp_open, resolution, perms);
    t.row(&[
        "open".into(),
        cand_o.to_string(),
        sig_o.to_string(),
        t06_o.to_string(),
        t08_o.to_string(),
        format!(
            "{}%",
            fnum(100.0 * (1.0 - sig_o as f64 / cand_o.max(1) as f64), 1)
        ),
    ]);
    out.push_str(&t.render());

    // Ground-truth recall on the open corpus (beyond the paper: it had no
    // gold data).
    let clause = Clause::default().permutations(perms);
    let rels = dp_open
        .query(&RelationshipQuery::all().with_clause(clause))
        .expect("query succeeds");
    let mut recalled = 0;
    for &(a, b) in &open.planted_pairs {
        let (na, nb) = (
            open.datasets[a].meta.name.clone(),
            open.datasets[b].meta.name.clone(),
        );
        if rels.iter().any(|r| {
            (r.left.dataset == na && r.right.dataset == nb)
                || (r.left.dataset == nb && r.right.dataset == na)
        }) {
            recalled += 1;
        }
    }
    out.push_str(&format!(
        "\nGround truth (ours): {}/{} planted pairs recovered among significant\n\
         relationships at any resolution.\n",
        recalled,
        open.planted_pairs.len()
    ));
    out
}

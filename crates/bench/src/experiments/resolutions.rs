//! Figures 3 + 6 — taxi density at different spatial resolutions and the
//! resolution compatibility DAG.

use crate::{fnum, Table};
use polygamy_stdata::{
    aggregate, FunctionKind, Resolution, ResolutionDag, SpatialResolution, TemporalResolution,
};

/// Prints one time slice of the taxi density at neighborhood and zip
/// resolution (Figure 3) and the per-data-set reachable resolutions
/// (Figure 6).
pub fn run(quick: bool) -> String {
    let c = super::urban(quick);
    let taxi = c.dataset("taxi").expect("taxi generated");
    let nbhd = c.geometry().neighborhood.as_ref().expect("nbhd partition");
    let zip = c.geometry().zip.as_ref().expect("zip partition");

    let mut out = String::from("# Figure 3 — density at different spatial resolutions\n\n");
    for (partition, label) in [(nbhd, "neighborhood"), (zip, "zip")] {
        let field = aggregate(
            taxi,
            partition,
            TemporalResolution::Day,
            FunctionKind::Density,
            None,
        )
        .expect("aggregates");
        // A busy mid-range slice.
        let z = field.n_steps / 2;
        let slice = field.slice(z);
        let max = slice.iter().cloned().fold(0.0, f64::max);
        let busy = slice.iter().filter(|&&v| v > max * 0.5).count();
        out.push_str(&format!(
            "{label}: {} regions; busiest region {:.0} trips/day; {} regions above half-max\n",
            field.n_regions, max, busy
        ));
    }
    out.push_str(
        "\nPaper shape: high-resolution grid shows localized hotspots; the\n\
         coarser resolution smooths them — our hotspot counts above shrink\n\
         with coarser partitions.\n",
    );

    out.push_str("\n# Figure 6 — resolution DAG\n\n");
    let mut t = Table::new(&["data set", "native", "#reachable", "examples"]);
    for d in &c.datasets {
        let native = Resolution::new(d.meta.spatial_resolution, d.meta.temporal_resolution);
        let reach = ResolutionDag::reachable(native);
        let examples: Vec<String> = reach.iter().take(3).map(|r| r.label()).collect();
        t.row(&[
            d.meta.name.clone(),
            native.label(),
            reach.len().to_string(),
            examples.join(" "),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nPaper: GPS/second data reaches 3 spatial x 4 temporal = 12 resolutions.\n");

    // Incompatibility checks of Figure 6.
    let zip_nbhd = ResolutionDag::common(
        Resolution::new(SpatialResolution::Zip, TemporalResolution::Hour),
        Resolution::new(SpatialResolution::Neighborhood, TemporalResolution::Hour),
    );
    out.push_str(&format!(
        "zip x neighborhood meet only at city scale: {} (common: {})\n",
        zip_nbhd
            .iter()
            .all(|r| r.spatial == SpatialResolution::City),
        zip_nbhd.len()
    ));
    let week_month = ResolutionDag::common(
        Resolution::new(SpatialResolution::City, TemporalResolution::Week),
        Resolution::new(SpatialResolution::City, TemporalResolution::Month),
    );
    out.push_str(&format!(
        "week x month incompatible: {}\n",
        fnum((week_month.is_empty() as u8) as f64, 0)
    ));
    out
}

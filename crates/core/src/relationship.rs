//! Relationship evaluation: score τ and strength ρ (paper Section 2.2–2.3).
//!
//! Two functions are *feature-related* at a spatio-temporal point when the
//! point is a feature of both (Definition 9); the relation is *positive*
//! when the feature signs agree and *negative* when they disagree
//! (Definitions 10–11). Over the aligned domain:
//!
//! * **score** `τ = (#p − #n) / |Σ|` (Eq. 1) — +1 all positive, −1 all
//!   negative;
//! * **strength** `ρ = F1` (Eq. 2) — precision `|Σ|/|Σ1|` (how often a
//!   feature in f1 co-occurs with one in f2), recall `|Σ|/|Σ2|`.
//!
//! All set algebra happens on packed bit vectors (paper Appendix C).

use crate::function::FunctionRef;
use polygamy_stdata::Resolution;
use polygamy_topology::{FeatureClass, FeatureSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Raw counts and derived measures of one candidate relationship.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelationshipMeasures {
    /// `#p` — positively related points.
    pub n_pos: usize,
    /// `#n` — negatively related points.
    pub n_neg: usize,
    /// `|Σ1|` — feature points of the first function.
    pub n_left: usize,
    /// `|Σ2|` — feature points of the second function.
    pub n_right: usize,
    /// Relationship score τ ∈ [−1, 1]; 0 when `|Σ| = 0`.
    pub score: f64,
    /// Relationship strength ρ ∈ [0, 1] (F1).
    pub strength: f64,
}

impl RelationshipMeasures {
    /// `|Σ| = #p + #n` — feature-related points.
    pub fn related_count(&self) -> usize {
        self.n_pos + self.n_neg
    }
}

/// Evaluates τ and ρ between two aligned feature sets.
///
/// When the thresholds are non-degenerate, positive/negative sets within
/// each function are disjoint and `#p = |P1∩P2| + |N1∩N2|`,
/// `#n = |P1∩N2| + |N1∩P2|` decompose Σ exactly. Degenerate thresholds
/// (θ⁻ ≥ θ⁺, possible on pathological functions) can make a point both a
/// positive and a negative feature; the strength therefore uses the true
/// point-set intersection `|Σ| = |(P1∪N1) ∩ (P2∪N2)|`, which keeps
/// precision and recall in `[0, 1]` unconditionally.
pub fn evaluate_features(left: &FeatureSet, right: &FeatureSet) -> RelationshipMeasures {
    let pp = left.pos.and_count(&right.pos);
    let nn = left.neg.and_count(&right.neg);
    let pn = left.pos.and_count(&right.neg);
    let np = left.neg.and_count(&right.pos);
    let n_pos = pp + nn;
    let n_neg = pn + np;
    let score = if n_pos + n_neg == 0 {
        0.0
    } else {
        (n_pos as f64 - n_neg as f64) / (n_pos + n_neg) as f64
    };
    // Point-set sizes for precision/recall.
    let all_left = left.all();
    let all_right = right.all();
    let sigma = all_left.and_count(&all_right);
    let n_left = all_left.count_ones();
    let n_right = all_right.count_ones();
    let strength = if sigma == 0 || n_left == 0 || n_right == 0 {
        0.0
    } else {
        let precision = sigma as f64 / n_left as f64;
        let recall = sigma as f64 / n_right as f64;
        2.0 * precision * recall / (precision + recall)
    };
    RelationshipMeasures {
        n_pos,
        n_neg,
        n_left,
        n_right,
        score,
        strength,
    }
}

/// A discovered relationship, as returned by queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relationship {
    /// First function.
    pub left: FunctionRef,
    /// Second function.
    pub right: FunctionRef,
    /// Resolution at which the relationship holds.
    pub resolution: Resolution,
    /// Feature class it was evaluated over.
    pub class: FeatureClass,
    /// The measures.
    pub measures: RelationshipMeasures,
    /// Monte Carlo p-value (1.0 when the significance test was skipped by
    /// a clause pre-filter).
    pub p_value: f64,
    /// `p ≤ α` under the query's significance level.
    pub significant: bool,
}

impl Relationship {
    /// Score τ shortcut.
    pub fn score(&self) -> f64 {
        self.measures.score
    }

    /// Strength ρ shortcut.
    pub fn strength(&self) -> f64 {
        self.measures.strength
    }
}

impl fmt::Display for Relationship {
    /// Writes the paper's reporting style, e.g.
    /// `taxi.density ~ weather.avg(wind) @ (hour, city) [salient]: τ=-0.62 ρ=0.75 p=0.003`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ~ {} @ {} [{}]: τ={:.2} ρ={:.2} p={:.3}{}",
            self.left,
            self.right,
            self.resolution,
            self.class.label(),
            self.measures.score,
            self.measures.strength,
            self.p_value,
            if self.significant {
                ""
            } else {
                " (not significant)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygamy_topology::BitVec;

    fn fs(n: usize, pos: &[usize], neg: &[usize]) -> FeatureSet {
        let mut p = BitVec::zeros(n);
        let mut g = BitVec::zeros(n);
        for &i in pos {
            p.set(i);
        }
        for &i in neg {
            g.set(i);
        }
        FeatureSet { pos: p, neg: g }
    }

    #[test]
    fn perfectly_positive() {
        let a = fs(10, &[1, 2], &[7]);
        let b = fs(10, &[1, 2], &[7]);
        let m = evaluate_features(&a, &b);
        assert_eq!(m.n_pos, 3);
        assert_eq!(m.n_neg, 0);
        assert_eq!(m.score, 1.0);
        assert_eq!(m.strength, 1.0);
    }

    #[test]
    fn perfectly_negative() {
        // Positive features of a coincide with negative features of b.
        let a = fs(10, &[1, 2], &[7]);
        let b = fs(10, &[7], &[1, 2]);
        let m = evaluate_features(&a, &b);
        assert_eq!(m.n_pos, 0);
        assert_eq!(m.n_neg, 3);
        assert_eq!(m.score, -1.0);
        assert_eq!(m.strength, 1.0);
    }

    #[test]
    fn mixed_score() {
        let a = fs(10, &[1, 2, 3], &[]);
        let b = fs(10, &[1], &[2]);
        let m = evaluate_features(&a, &b);
        assert_eq!(m.n_pos, 1);
        assert_eq!(m.n_neg, 1);
        assert_eq!(m.score, 0.0);
        // |Σ|=2, |Σ1|=3, |Σ2|=2: precision 2/3, recall 1 → F1 = 0.8.
        assert!((m.strength - 0.8).abs() < 1e-12);
    }

    #[test]
    fn disjoint_features_score_zero() {
        let a = fs(10, &[1], &[]);
        let b = fs(10, &[5], &[]);
        let m = evaluate_features(&a, &b);
        assert_eq!(m.related_count(), 0);
        assert_eq!(m.score, 0.0);
        assert_eq!(m.strength, 0.0);
    }

    #[test]
    fn empty_side() {
        let a = fs(10, &[], &[]);
        let b = fs(10, &[1], &[2]);
        let m = evaluate_features(&a, &b);
        assert_eq!(m.score, 0.0);
        assert_eq!(m.strength, 0.0);
    }

    #[test]
    fn strength_tracks_overlap_frequency() {
        // Weak: only 1 of 5 left features co-occurs.
        let a = fs(100, &(0..5).collect::<Vec<_>>(), &[]);
        let b = fs(100, &[0], &[]);
        let weak = evaluate_features(&a, &b);
        // Strong: all 5 co-occur.
        let c = fs(100, &(0..5).collect::<Vec<_>>(), &[]);
        let strong = evaluate_features(&a, &c);
        assert!(weak.strength < strong.strength);
        assert_eq!(strong.strength, 1.0);
    }

    #[test]
    fn display_format() {
        let rel = Relationship {
            left: FunctionRef {
                dataset: "taxi".into(),
                function: "density".into(),
            },
            right: FunctionRef {
                dataset: "weather".into(),
                function: "avg(wind)".into(),
            },
            resolution: Resolution::new(
                polygamy_stdata::SpatialResolution::City,
                polygamy_stdata::TemporalResolution::Hour,
            ),
            class: FeatureClass::Salient,
            measures: RelationshipMeasures {
                n_pos: 1,
                n_neg: 3,
                n_left: 5,
                n_right: 5,
                score: -0.5,
                strength: 0.8,
            },
            p_value: 0.002,
            significant: true,
        };
        let s = rel.to_string();
        assert!(s.contains("taxi.density"), "{s}");
        assert!(s.contains("(hour, city)"), "{s}");
        assert!(s.contains("τ=-0.50"), "{s}");
        assert!(!s.contains("not significant"), "{s}");
    }
}

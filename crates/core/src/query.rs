//! Relationship queries and clauses (paper Section 5.3).
//!
//! The general query form is *find relationships between D1 and D2
//! satisfying clause*, where D1/D2 are collections of data sets (D2
//! defaults to the whole corpus) and the optional clause filters on score,
//! strength, feature class, resolution, significance level, or supplies
//! user-defined feature thresholds.

use crate::cache::Fnv1a;
use crate::significance::PermutationScheme;
use polygamy_stdata::Resolution;
use polygamy_topology::FeatureClass;
use serde::{Deserialize, Serialize};

/// User-supplied feature thresholds for one data set (clause option,
/// paper Section 5.3: "feature thresholds … can be optionally specified …
/// if the user is familiar with any of the data sets").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetThresholds {
    /// Data set whose functions should use these thresholds.
    pub dataset: String,
    /// Super-level threshold θ⁺.
    pub theta_pos: f64,
    /// Sub-level threshold θ⁻.
    pub theta_neg: f64,
}

/// Filter conditions applied to candidate relationships.
///
/// Defaults follow the paper: α = 0.05, |m| = 1,000 permutations, both
/// feature classes, all common resolutions, significant results only.
/// Builders compose left to right, and the whole clause has a canonical
/// PQL spelling (see [`crate::pql`]):
///
/// ```
/// use polygamy_core::prelude::*;
/// use polygamy_core::to_pql;
///
/// let clause = Clause::default()
///     .min_score(0.6)
///     .class(FeatureClass::Salient)
///     .permutations(2_000);
/// assert_eq!(clause.alpha, 0.05); // paper default, untouched
/// assert!(clause.admits_class(FeatureClass::Salient));
/// assert!(!clause.admits_class(FeatureClass::Extreme));
/// assert_eq!(
///     to_pql(&RelationshipQuery::all().with_clause(clause)),
///     "between * and * where score >= 0.6 and class = salient and permutations = 2000"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clause {
    /// Minimum |τ| (0 disables).
    pub min_score: f64,
    /// Minimum ρ (0 disables).
    pub min_strength: f64,
    /// Restrict to one feature class (None = both).
    pub class: Option<FeatureClass>,
    /// Significance level α (paper default 0.05).
    pub alpha: f64,
    /// Monte Carlo permutations |m| (paper default 1,000).
    pub permutations: usize,
    /// Drop relationships that fail the significance test (default true).
    pub significant_only: bool,
    /// Restrict to specific resolutions (None = all common resolutions).
    pub resolutions: Option<Vec<Resolution>>,
    /// User-defined thresholds per data set.
    pub thresholds: Vec<DatasetThresholds>,
    /// Override the permutation scheme for this query.
    pub scheme: Option<PermutationScheme>,
}

impl Default for Clause {
    fn default() -> Self {
        Self {
            min_score: 0.0,
            min_strength: 0.0,
            class: None,
            alpha: 0.05,
            permutations: 1_000,
            significant_only: true,
            resolutions: None,
            thresholds: Vec::new(),
            scheme: None,
        }
    }
}

impl Clause {
    /// Requires |τ| ≥ `v`.
    pub fn min_score(mut self, v: f64) -> Self {
        self.min_score = v;
        self
    }

    /// Requires ρ ≥ `v`.
    pub fn min_strength(mut self, v: f64) -> Self {
        self.min_strength = v;
        self
    }

    /// Restricts to one feature class.
    pub fn class(mut self, c: FeatureClass) -> Self {
        self.class = Some(c);
        self
    }

    /// Sets the significance level.
    pub fn alpha(mut self, a: f64) -> Self {
        self.alpha = a;
        self
    }

    /// Sets the Monte Carlo permutation count.
    pub fn permutations(mut self, m: usize) -> Self {
        self.permutations = m;
        self
    }

    /// Also returns relationships that fail the significance test
    /// (marked `significant: false`).
    pub fn include_insignificant(mut self) -> Self {
        self.significant_only = false;
        self
    }

    /// Restricts evaluation to one resolution.
    pub fn at_resolution(mut self, r: Resolution) -> Self {
        self.resolutions.get_or_insert_with(Vec::new).push(r);
        self
    }

    /// Adds user-defined thresholds for a data set.
    pub fn with_thresholds(mut self, dataset: &str, theta_pos: f64, theta_neg: f64) -> Self {
        self.thresholds.push(DatasetThresholds {
            dataset: dataset.to_string(),
            theta_pos,
            theta_neg,
        });
        self
    }

    /// Overrides the permutation scheme.
    pub fn with_scheme(mut self, scheme: PermutationScheme) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// True if `resolution` passes the clause's resolution filter.
    pub fn admits_resolution(&self, resolution: Resolution) -> bool {
        self.resolutions
            .as_ref()
            .is_none_or(|rs| rs.contains(&resolution))
    }

    /// True if `class` passes the clause's class filter.
    pub fn admits_class(&self, class: FeatureClass) -> bool {
        self.class.is_none_or(|c| c == class)
    }

    /// Stable fingerprint for result caching.
    ///
    /// Cache keys are persisted on disk by `polygamy-store` sessions, so
    /// the hash is an explicit 64-bit FNV-1a over a fully specified byte
    /// stream (little-endian fields, length-prefixed strings, presence
    /// tags) — identical across processes, platforms and releases, unlike
    /// `std`'s `DefaultHasher`.
    pub fn cache_key(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_f64(self.min_score);
        h.write_f64(self.min_strength);
        match self.class {
            None => h.write_u8(0),
            Some(FeatureClass::Salient) => h.write_u8(1),
            Some(FeatureClass::Extreme) => h.write_u8(2),
        }
        h.write_f64(self.alpha);
        h.write_usize(self.permutations);
        h.write_u8(u8::from(self.significant_only));
        match &self.resolutions {
            None => h.write_u8(0),
            Some(rs) => {
                h.write_u8(1);
                h.write_usize(rs.len());
                for r in rs {
                    h.write_u8(r.spatial.code());
                    h.write_u8(r.temporal.code());
                }
            }
        }
        h.write_usize(self.thresholds.len());
        for t in &self.thresholds {
            h.write_str(&t.dataset);
            h.write_f64(t.theta_pos);
            h.write_f64(t.theta_neg);
        }
        match self.scheme {
            None => h.write_u8(0),
            Some(PermutationScheme::Paper) => h.write_u8(1),
            Some(PermutationScheme::SpatioTemporal) => h.write_u8(2),
        }
        h.finish()
    }
}

/// A relationship query: left collection × right collection, filtered by a
/// clause. `None` collections mean "the whole corpus".
///
/// The three constructors cover the paper's query shapes, and every query
/// round-trips through its textual PQL form:
///
/// ```
/// use polygamy_core::prelude::*;
/// use polygamy_core::{parse_query, to_pql};
///
/// // Hypothesis generation: relate everything to everything.
/// let all = RelationshipQuery::all();
/// // "Find all data sets related to taxi."
/// let of = RelationshipQuery::of("taxi");
/// // Hypothesis testing between explicit collections.
/// let between = RelationshipQuery::between(&["taxi"], &["weather", "gas-prices"]);
///
/// assert_eq!(parse_query("between * and *").unwrap(), all);
/// assert_eq!(parse_query(&to_pql(&of)).unwrap(), of);
/// assert_eq!(
///     to_pql(&between),
///     "between taxi and weather, gas-prices"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RelationshipQuery {
    /// D1 (None = all indexed data sets).
    pub left: Option<Vec<String>>,
    /// D2 (None = all indexed data sets).
    pub right: Option<Vec<String>>,
    /// Filter clause.
    pub clause: Clause,
}

impl RelationshipQuery {
    /// Relationships among all pairs of data sets (hypothesis generation).
    pub fn all() -> Self {
        Self::default()
    }

    /// Relationships between one data set and the whole corpus:
    /// *find all data sets related to D*.
    pub fn of(dataset: &str) -> Self {
        Self {
            left: Some(vec![dataset.to_string()]),
            right: None,
            clause: Clause::default(),
        }
    }

    /// Relationships between two explicit collections (hypothesis testing).
    pub fn between(left: &[&str], right: &[&str]) -> Self {
        Self {
            left: Some(left.iter().map(|s| s.to_string()).collect()),
            right: Some(right.iter().map(|s| s.to_string()).collect()),
            clause: Clause::default(),
        }
    }

    /// Attaches a clause.
    pub fn with_clause(mut self, clause: Clause) -> Self {
        self.clause = clause;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygamy_stdata::{SpatialResolution, TemporalResolution};

    #[test]
    fn builders_compose() {
        let c = Clause::default()
            .min_score(0.6)
            .min_strength(0.2)
            .class(FeatureClass::Extreme)
            .alpha(0.01)
            .permutations(500)
            .include_insignificant();
        assert_eq!(c.min_score, 0.6);
        assert_eq!(c.class, Some(FeatureClass::Extreme));
        assert!(!c.significant_only);
        assert_eq!(c.permutations, 500);
    }

    #[test]
    fn admits_filters() {
        let r1 = Resolution::new(SpatialResolution::City, TemporalResolution::Week);
        let r2 = Resolution::new(SpatialResolution::City, TemporalResolution::Day);
        let c = Clause::default().at_resolution(r1);
        assert!(c.admits_resolution(r1));
        assert!(!c.admits_resolution(r2));
        assert!(Clause::default().admits_resolution(r2));
        let cc = Clause::default().class(FeatureClass::Salient);
        assert!(cc.admits_class(FeatureClass::Salient));
        assert!(!cc.admits_class(FeatureClass::Extreme));
    }

    #[test]
    fn cache_key_is_pinned() {
        // Cache keys persist on disk, so the default clause's fingerprint is
        // pinned: if this assertion fires, the key derivation changed and
        // the store format version must be bumped.
        assert_eq!(Clause::default().cache_key(), 0x8b94_2d1d_da12_4ede);
    }

    #[test]
    fn cache_keys_distinguish_clauses() {
        let a = Clause::default();
        let b = Clause::default().min_score(0.5);
        let c = Clause::default().min_score(0.5);
        assert_ne!(a.cache_key(), b.cache_key());
        assert_eq!(b.cache_key(), c.cache_key());
        let d = Clause::default().with_thresholds("taxi", 1.0, -1.0);
        assert_ne!(a.cache_key(), d.cache_key());
    }

    #[test]
    fn query_constructors() {
        let q = RelationshipQuery::of("taxi");
        assert_eq!(q.left, Some(vec!["taxi".to_string()]));
        assert_eq!(q.right, None);
        let q2 = RelationshipQuery::between(&["a"], &["b", "c"]);
        assert_eq!(q2.right.as_ref().unwrap().len(), 2);
        let q3 = RelationshipQuery::all();
        assert!(q3.left.is_none() && q3.right.is_none());
    }
}

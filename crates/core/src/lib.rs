//! # polygamy-core — the Data Polygamy framework
//!
//! Rust implementation of *Data Polygamy: The Many-Many Relationships among
//! Urban Spatio-Temporal Data Sets* (SIGMOD 2016). Given a corpus of
//! spatio-temporal data sets, the framework answers **relationship
//! queries** — *find all data sets related to D* — by:
//!
//! 1. transforming every (data set, attribute) pair into time-varying
//!    scalar functions at every viable spatio-temporal resolution
//!    ([`pipeline::scalar`]);
//! 2. indexing each function with merge trees, deriving salient/extreme
//!    feature thresholds from topological persistence, and precomputing
//!    feature sets ([`pipeline::features`]);
//! 3. evaluating candidate relationships by feature intersection — score τ
//!    and strength ρ — and pruning those that fail a restricted Monte Carlo
//!    significance test ([`relationship`], [`significance`], [`operator`]).
//!
//! The [`framework::DataPolygamy`] facade ties the stages together:
//!
//! ```no_run
//! use polygamy_core::prelude::*;
//! # fn geometry() -> CityGeometry { unimplemented!() }
//! # fn datasets() -> Vec<polygamy_stdata::Dataset> { unimplemented!() }
//! let mut dp = DataPolygamy::new(geometry(), Config::default());
//! for d in datasets() {
//!     dp.add_dataset(d);
//! }
//! dp.build_index();
//! let query = RelationshipQuery::all().with_clause(Clause::default().min_score(0.6));
//! for rel in dp.query(&query).unwrap() {
//!     println!("{rel}");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
mod executor;
pub mod framework;
pub mod function;
pub mod index;
pub mod operator;
pub mod pipeline;
pub mod pql;
pub mod query;
pub mod relationship;
pub mod significance;

pub use cache::{Fnv1a, QueryCache, ShardedLruCache};
pub use error::{Error, Result};
pub use executor::{query_datasets, ShardMap};
pub use framework::{
    index_dataset, run_query, run_query_many, run_query_many_view, run_query_many_view_routed,
    run_query_view, run_query_view_routed, CityGeometry, Config, DataPolygamy,
};
pub use function::{FunctionRef, FunctionSpec};
pub use index::{DatasetEntry, FunctionEntry, IndexStats, IndexView, PolygamyIndex};
pub use operator::relation;
pub use pql::{parse_batch, parse_query, to_pql, PqlError, PqlErrorKind};
pub use query::{Clause, RelationshipQuery};
pub use relationship::{evaluate_features, Relationship, RelationshipMeasures};
pub use significance::{significance_test, PermutationScheme};

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::framework::{CityGeometry, Config, DataPolygamy};
    pub use crate::function::{FunctionRef, FunctionSpec};
    pub use crate::pql::{parse_batch, parse_query, to_pql, PqlError};
    pub use crate::query::{Clause, RelationshipQuery};
    pub use crate::relationship::Relationship;
    pub use polygamy_stdata::{
        AggregateKind, AttributeMeta, Dataset, DatasetBuilder, DatasetMeta, FunctionKind, GeoPoint,
        Resolution, SpatialPartition, SpatialResolution, TemporalResolution,
    };
    pub use polygamy_topology::FeatureClass;
}

//! Query-result caching: a stable fingerprint hasher and a sharded,
//! bounded LRU cache.
//!
//! Cache keys are persisted on disk by `polygamy-store` sessions, so the
//! fingerprint must be *stable* — identical across processes, platforms and
//! compiler releases. [`Fnv1a`] implements the 64-bit FNV-1a hash with
//! explicit little-endian framing; `std`'s `DefaultHasher` is documented to
//! change between releases and is never used for persisted keys.
//!
//! [`ShardedLruCache`] replaces the framework's original unbounded
//! `Mutex<HashMap>`: entries are spread over independently locked shards so
//! concurrent readers rarely contend, and each shard evicts its
//! least-recently-used entry once full, bounding memory under sustained
//! query traffic.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher with explicit framing helpers.
///
/// Unlike `std::hash::Hasher` implementations, the byte stream it consumes
/// is fully specified here (little-endian integers, length-prefixed
/// strings), so a fingerprint computed today can be compared against one
/// stored on disk years from now.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a new hash at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Hashes a whole byte slice in one call.
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Self::new();
        h.write(bytes);
        h.finish()
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Feeds a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `i64` as 8 little-endian bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to `u64` (stable across word sizes).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a length-prefixed string (framing prevents `"ab", "c"` from
    /// colliding with `"a", "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One shard: a bounded map with LRU eviction via monotonic access stamps.
///
/// Shards are small (capacity / shard count), so the O(capacity) eviction
/// scan on overflow is cheaper than maintaining an intrusive list and keeps
/// the structure trivially correct.
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, (V, u64)>,
    tick: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            tick: 0,
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = tick;
            v.clone()
        })
    }

    fn insert(&mut self, key: K, value: V, capacity: usize) -> bool {
        self.tick += 1;
        let mut evicted = false;
        if !self.map.contains_key(&key) && self.map.len() >= capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.map.insert(key, (value, self.tick));
        evicted
    }
}

/// A sharded, bounded, LRU-evicting cache safe for concurrent readers.
#[derive(Debug)]
pub struct ShardedLruCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    per_shard_capacity: usize,
}

/// Shard count (power of two so the selector is a mask).
const N_SHARDS: usize = 8;

impl<K: Hash + Eq + Clone, V: Clone> ShardedLruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries overall
    /// (rounded up to at least one entry per shard).
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: (0..N_SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity: capacity.div_ceil(N_SHARDS).max(1),
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * N_SHARDS
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        // Shard selection only needs good dispersion, not stability, but
        // FNV over std::hash keeps it deterministic for tests too.
        let mut h = Fnv1a::new();
        let mut adapter = FnvStdAdapter(&mut h);
        key.hash(&mut adapter);
        &self.shards[(h.finish() as usize) & (N_SHARDS - 1)]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get(key)
    }

    /// Inserts `key → value`, evicting the shard's least-recently-used
    /// entry when the shard is full. Returns `true` when an older entry
    /// was evicted to make room — callers feed this into the registry's
    /// eviction counters.
    pub fn insert(&self, key: K, value: V) -> bool {
        let shard = self.shard(&key);
        shard.lock().insert(key, value, self.per_shard_capacity)
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().map.clear();
        }
    }
}

/// Adapts [`Fnv1a`] to `std::hash::Hasher` for shard selection only (the
/// `Hash` impls of tuple keys feed through here; persisted fingerprints
/// never do).
struct FnvStdAdapter<'a>(&'a mut Fnv1a);

impl std::hash::Hasher for FnvStdAdapter<'_> {
    fn finish(&self) -> u64 {
        self.0.finish()
    }

    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }
}

/// The framework/session query cache: per-pair results keyed by
/// `(dataset a, dataset b, clause fingerprint)`.
pub type QueryCache = ShardedLruCache<(usize, usize, u64), Arc<Vec<crate::Relationship>>>;

/// Default bound on cached per-pair results. At ~10 relationships per pair
/// this is a few MB — generous for serving, bounded under adversarial query
/// streams.
pub const DEFAULT_QUERY_CACHE_CAPACITY: usize = 4_096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(Fnv1a::hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv1a_framing_prevents_concat_collisions() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn cache_get_insert() {
        let c: ShardedLruCache<u64, u64> = ShardedLruCache::new(64);
        assert!(c.is_empty());
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        // Capacity 8 over 8 shards = 1 entry per shard: inserting two keys
        // that land in the same shard must evict the older one.
        let c: ShardedLruCache<u64, u64> = ShardedLruCache::new(8);
        let mut evictions = 0usize;
        for k in 0..64 {
            if c.insert(k, k) {
                evictions += 1;
            }
        }
        assert!(c.len() <= c.capacity());
        // The insert return value accounts exactly for the entries that
        // went missing — the contract the registry's eviction counters
        // are built on.
        assert_eq!(evictions, 64 - c.len());
        // The last key inserted into its shard is still present.
        assert_eq!(c.get(&63), Some(63));
    }

    #[test]
    fn cache_recency_refresh_on_get() {
        // Single-shard-capacity 2: touch `a`, insert two more keys that hash
        // to the same shard; `a` must outlive the untouched middle key when
        // eviction strikes that shard.
        let c: ShardedLruCache<u64, u64> = ShardedLruCache::new(16); // 2/shard
                                                                     // Find three keys in one shard by probing.
        let mut same: Vec<u64> = Vec::new();
        let probe = |k: &u64| {
            let mut h = Fnv1a::new();
            let mut a = FnvStdAdapter(&mut h);
            std::hash::Hash::hash(k, &mut a);
            (h.finish() as usize) & (N_SHARDS - 1)
        };
        let target = probe(&0);
        for k in 0..1_000u64 {
            if probe(&k) == target {
                same.push(k);
                if same.len() == 3 {
                    break;
                }
            }
        }
        let (a, b, d) = (same[0], same[1], same[2]);
        c.insert(a, 1);
        c.insert(b, 2);
        assert_eq!(c.get(&a), Some(1)); // refresh a
        c.insert(d, 3); // shard full: evicts b (least recent)
        assert_eq!(c.get(&a), Some(1));
        assert_eq!(c.get(&b), None);
        assert_eq!(c.get(&d), Some(3));
    }

    #[test]
    fn cache_concurrent_readers() {
        let c: std::sync::Arc<ShardedLruCache<u64, u64>> =
            std::sync::Arc::new(ShardedLruCache::new(1_024));
        for k in 0..256 {
            c.insert(k, k * 2);
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        let k = (i * 7 + t) % 256;
                        assert_eq!(c.get(&k), Some(k * 2));
                    }
                });
            }
        });
    }
}

//! The flat deterministic parallel query executor.
//!
//! The paper's relationship operator is embarrassingly parallel: Section
//! 5.3 evaluates the n×m candidate function pairs per resolution as one
//! Hadoop job. This module reproduces that execution shape for the read
//! path. A query — or a whole batch of queries — is planned on the
//! coordinating thread and expanded *up front* into its complete flat list
//! of (pair × function-unit × class) [`UnitTask`]s; the tasks then run on a
//! **single shared worker pool** ([`run_chunked_tasks`]), and results are
//! assembled in canonical task order. The invariants this buys:
//!
//! * **no per-pair pool spawn** — one pool serves an entire
//!   `query`/`query_many` call, however many pairs it expands to;
//! * **worker-count independence** — each task is pure (its Monte Carlo
//!   seed derives from the task identity, never from scheduling), and
//!   assembly order is the expansion order, so results are byte-identical
//!   for `workers = 1..N`;
//! * **batch amortisation** — `query_many` expands every query before
//!   scheduling, so pool startup and stragglers amortise across the batch.
//!
//! Cache lookups stay on the coordinating thread: hits are spliced into the
//! plan, only misses are scheduled, and identical (pair, clause) requests
//! appearing several times in one batch are evaluated once.
//!
//! Every call reports through [`polygamy_obs`]: stage wall times
//! (`core.stage.*_ns`), task/cache counters (`core.*`), and — when the
//! calling thread is inside [`polygamy_obs::trace::record`] — the same
//! events into the per-query trace (spans `cache-resolve`, `expand`,
//! `evaluate`, `assemble`). Instrumentation never touches the result
//! values, so traced and untraced executions stay byte-identical (the
//! determinism matrix pins this).

use crate::cache::QueryCache;
use crate::error::{Error, Result};
use crate::framework::{CityGeometry, Config};
use crate::index::{DatasetEntry, IndexView};
use crate::operator::{evaluate_unit, expand_pair_tasks, UnitTask};
use crate::query::RelationshipQuery;
use crate::relationship::Relationship;
use polygamy_mapreduce::run_chunked_tasks;
use polygamy_obs::{names, trace, Counter};
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Cached registry handles for the executor's metrics — resolved once
/// per process, so the hot path pays only relaxed atomic adds.
struct ExecMetrics {
    queries: Arc<Counter>,
    tasks_expanded: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    plan_ns: Arc<Counter>,
    expand_ns: Arc<Counter>,
    evaluate_ns: Arc<Counter>,
    assemble_ns: Arc<Counter>,
}

fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = polygamy_obs::global();
        ExecMetrics {
            queries: r.counter(names::CORE_QUERIES),
            tasks_expanded: r.counter(names::CORE_TASKS_EXPANDED),
            cache_hits: r.counter(names::CORE_QUERY_CACHE_HITS),
            cache_misses: r.counter(names::CORE_QUERY_CACHE_MISSES),
            cache_evictions: r.counter(names::CORE_QUERY_CACHE_EVICTIONS),
            plan_ns: r.counter(names::CORE_STAGE_PLAN_NS),
            expand_ns: r.counter(names::CORE_STAGE_EXPAND_NS),
            evaluate_ns: r.counter(names::CORE_STAGE_EVALUATE_NS),
            assemble_ns: r.counter(names::CORE_STAGE_ASSEMBLE_NS),
        }
    })
}

/// Elapsed nanoseconds, saturating into `u64`.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// How one canonical pair of a planned query is satisfied.
enum PairSource {
    /// Served from the query cache.
    Cached(Arc<Vec<Relationship>>),
    /// Evaluated by this batch; index into the miss list.
    Pending(usize),
}

/// One distinct (pair, clause) evaluation this batch owes.
struct Miss<'q> {
    /// Cache key: canonical dataset pair + clause fingerprint.
    key: (usize, usize, u64),
    /// The clause to evaluate under (clauses with equal fingerprints are
    /// interchangeable by construction of [`crate::query::Clause::cache_key`]).
    clause: &'q crate::query::Clause,
}

/// Chunk size for scheduling `n_tasks` evaluation tasks on `workers`
/// threads: large enough to amortise queue traffic on huge expansions,
/// small enough (≥ 8 chunks per worker) to keep stragglers from starving
/// the pool. Chunking never affects results, only scheduling granularity.
pub(crate) fn task_chunk_size(n_tasks: usize, workers: usize) -> usize {
    (n_tasks / (workers.max(1) * 8)).max(1)
}

/// Deterministic presentation order: strongest |τ| first, ties broken by
/// function names, resolution and class.
///
/// Scores are compared with [`f64::total_cmp`]: a non-finite score —
/// possible on degenerate inputs such as constant functions with custom
/// thresholds — sorts to a stable position (NaN |τ| first, as the largest
/// value in total order) instead of panicking the query.
pub(crate) fn sort_relationships(rels: &mut [Relationship]) {
    rels.sort_by(|x, y| {
        y.score()
            .abs()
            .total_cmp(&x.score().abs())
            .then_with(|| x.left.to_string().cmp(&y.left.to_string()))
            .then_with(|| x.right.to_string().cmp(&y.right.to_string()))
            .then_with(|| x.resolution.label().cmp(&y.resolution.label()))
            .then_with(|| x.class.label().cmp(y.class.label()))
    });
}

/// Resolves one collection of a query against a catalog: `None` ranges
/// over every cataloged data set, explicit names must resolve.
fn resolve_collection(
    datasets: &[DatasetEntry],
    names: &Option<Vec<String>>,
) -> Result<Vec<usize>> {
    match names {
        None => Ok((0..datasets.len()).collect()),
        Some(list) => list
            .iter()
            .map(|n| {
                datasets
                    .iter()
                    .position(|d| d.meta.name == *n)
                    .ok_or_else(|| Error::UnknownDataset(n.clone()))
            })
            .collect(),
    }
}

/// The catalog indices a query's task expansion will touch — every data
/// set named (or ranged over) by either collection, deduplicated and
/// sorted.
///
/// This is the executor's *footprint report*: a demand-paged store
/// session calls it before evaluation to fault in exactly the function
/// segments the expansion can reach — combined with
/// [`Clause::admits_resolution`](crate::query::Clause::admits_resolution)
/// per segment — instead of materializing the whole store. Unknown names
/// yield the same [`Error::UnknownDataset`] the evaluation itself would.
pub fn query_datasets(datasets: &[DatasetEntry], query: &RelationshipQuery) -> Result<Vec<usize>> {
    let mut touched: Vec<usize> = resolve_collection(datasets, &query.left)?;
    touched.extend(resolve_collection(datasets, &query.right)?);
    touched.sort_unstable();
    touched.dedup();
    Ok(touched)
}

/// Evaluates a batch of relationship queries against an index view on one
/// shared worker pool — the read path behind `DataPolygamy::{query,
/// query_many}` and `StoreSession::{query, query_many}`.
///
/// Returns one result vector per input query, in input order. Pairs are
/// deduplicated within each query (the operator is symmetric up to swapping
/// left/right) and evaluations are deduplicated across the whole batch;
/// per-pair results are served from `cache` keyed by the clause
/// fingerprint and inserted on evaluation.
pub(crate) fn execute_queries(
    index: &IndexView<'_>,
    geometry: &CityGeometry,
    config: &Config,
    cache: &QueryCache,
    queries: &[RelationshipQuery],
) -> Result<Vec<Vec<Relationship>>> {
    let metrics = exec_metrics();
    metrics.queries.add(queries.len() as u64);
    trace::add("queries", queries.len() as u64);

    // ---- Plan: resolve names, canonicalise pairs, split hits from misses.
    let t_plan = Instant::now();
    let plan_span = trace::span("cache-resolve");
    let resolve = |names: &Option<Vec<String>>| -> Result<Vec<usize>> {
        resolve_collection(index.datasets(), names)
    };
    let mut n_hits = 0u64;
    let mut n_misses = 0u64;
    let mut misses: Vec<Miss> = Vec::new();
    let mut miss_of: HashMap<(usize, usize, u64), usize> = HashMap::new();
    let mut plans: Vec<Vec<PairSource>> = Vec::with_capacity(queries.len());
    for query in queries {
        let left = resolve(&query.left)?;
        let right = resolve(&query.right)?;
        let clause_key = query.clause.cache_key();
        // All-pairs queries produce exactly n·(n−1)/2 canonical pairs;
        // explicit collections at most |left|·|right|.
        let cap = if query.left.is_none() && query.right.is_none() {
            let n = left.len();
            n * n.saturating_sub(1) / 2
        } else {
            left.len() * right.len()
        };
        let mut plan: Vec<PairSource> = Vec::with_capacity(cap);
        let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(cap);
        for &a in &left {
            for &b in &right {
                if a == b {
                    continue;
                }
                // Canonicalise so (a, b) and (b, a) share cache entries;
                // results are reported with the canonical orientation.
                let pair = (a.min(b), a.max(b));
                if !seen.insert(pair) {
                    continue;
                }
                let key = (pair.0, pair.1, clause_key);
                match cache.get(&key) {
                    Some(hit) => {
                        n_hits += 1;
                        plan.push(PairSource::Cached(hit));
                    }
                    None => {
                        n_misses += 1;
                        let mi = *miss_of.entry(key).or_insert_with(|| {
                            misses.push(Miss {
                                key,
                                clause: &query.clause,
                            });
                            misses.len() - 1
                        });
                        plan.push(PairSource::Pending(mi));
                    }
                }
            }
        }
        plans.push(plan);
    }
    drop(plan_span);
    metrics.plan_ns.add(elapsed_ns(t_plan));
    metrics.cache_hits.add(n_hits);
    metrics.cache_misses.add(n_misses);
    trace::add("cache_hits", n_hits);
    trace::add("cache_misses", n_misses);

    // ---- Expand every miss into its flat unit-task list (geometry is
    // validated here, on the coordinating thread).
    let t_expand = Instant::now();
    let expand_span = trace::span("expand");
    let mut tasks: Vec<UnitTask> = Vec::new();
    let mut task_ranges: Vec<Range<usize>> = Vec::with_capacity(misses.len());
    for miss in &misses {
        let start = tasks.len();
        expand_pair_tasks(
            index,
            geometry,
            miss.key.0,
            miss.key.1,
            miss.clause,
            &mut tasks,
        )?;
        task_ranges.push(start..tasks.len());
    }
    drop(expand_span);
    metrics.expand_ns.add(elapsed_ns(t_expand));
    metrics.tasks_expanded.add(tasks.len() as u64);
    trace::add("tasks_expanded", tasks.len() as u64);

    // ---- Evaluate the entire batch on one shared pool.
    let t_evaluate = Instant::now();
    let evaluate_span = trace::span("evaluate");
    let workers = config.cluster.workers();
    let results = run_chunked_tasks(
        workers,
        tasks.len(),
        task_chunk_size(tasks.len(), workers),
        |i| evaluate_unit(&tasks[i], config),
    );
    drop(evaluate_span);
    metrics.evaluate_ns.add(elapsed_ns(t_evaluate));

    // ---- Assemble per-miss results in canonical task order; fill the cache.
    let t_assemble = Instant::now();
    let assemble_span = trace::span("assemble");
    let mut results = results.into_iter();
    let mut evaluated: Vec<Arc<Vec<Relationship>>> = Vec::with_capacity(misses.len());
    for (miss, range) in misses.iter().zip(&task_ranges) {
        let rels: Vec<Relationship> = results.by_ref().take(range.len()).flatten().collect();
        let rels = Arc::new(rels);
        if cache.insert(miss.key, Arc::clone(&rels)) {
            metrics.cache_evictions.inc();
        }
        evaluated.push(rels);
    }

    // ---- Stitch each query's output from hits and fresh evaluations.
    let mut out = Vec::with_capacity(plans.len());
    for plan in plans {
        let mut rels: Vec<Relationship> = Vec::new();
        for source in plan {
            match source {
                PairSource::Cached(r) => rels.extend(r.iter().cloned()),
                PairSource::Pending(mi) => rels.extend(evaluated[mi].iter().cloned()),
            }
        }
        sort_relationships(&mut rels);
        out.push(rels);
    }
    drop(assemble_span);
    metrics.assemble_ns.add(elapsed_ns(t_assemble));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionRef;
    use crate::relationship::RelationshipMeasures;
    use polygamy_stdata::{Resolution, SpatialResolution, TemporalResolution};
    use polygamy_topology::FeatureClass;

    fn rel(left: &str, score: f64) -> Relationship {
        Relationship {
            left: FunctionRef {
                dataset: left.into(),
                function: "density".into(),
            },
            right: FunctionRef {
                dataset: "other".into(),
                function: "density".into(),
            },
            resolution: Resolution::new(SpatialResolution::City, TemporalResolution::Hour),
            class: FeatureClass::Salient,
            measures: RelationshipMeasures {
                n_pos: 1,
                n_neg: 0,
                n_left: 1,
                n_right: 1,
                score,
                strength: 1.0,
            },
            p_value: 1.0,
            significant: false,
        }
    }

    #[test]
    fn sort_is_total_even_with_nan_scores() {
        // A degenerate pair can surface a non-finite score; the sort must
        // order it deterministically instead of panicking.
        let mut rels = vec![rel("a", 0.25), rel("b", f64::NAN), rel("c", 0.9)];
        sort_relationships(&mut rels);
        // NaN |τ| is the largest value in IEEE total order.
        assert!(rels[0].score().is_nan());
        assert_eq!(rels[1].left.dataset, "c");
        assert_eq!(rels[2].left.dataset, "a");
        // And sorting is idempotent (stable output on resort).
        let once = rels.clone();
        sort_relationships(&mut rels);
        assert_eq!(format!("{rels:?}"), format!("{once:?}"));
    }

    #[test]
    fn sort_breaks_ties_by_name() {
        let mut rels = vec![rel("zeta", 0.5), rel("alpha", 0.5), rel("mid", 0.5)];
        sort_relationships(&mut rels);
        let names: Vec<&str> = rels.iter().map(|r| r.left.dataset.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn chunk_size_scales_with_tasks() {
        assert_eq!(task_chunk_size(0, 4), 1);
        assert_eq!(task_chunk_size(10, 4), 1);
        assert_eq!(task_chunk_size(3_200, 4), 100);
        // Degenerate worker counts never panic or return zero.
        assert_eq!(task_chunk_size(100, 0), 12);
    }
}

//! The flat deterministic parallel query executor.
//!
//! The paper's relationship operator is embarrassingly parallel: Section
//! 5.3 evaluates the n×m candidate function pairs per resolution as one
//! Hadoop job. This module reproduces that execution shape for the read
//! path. A query — or a whole batch of queries — is planned on the
//! coordinating thread and expanded *up front* into its complete flat list
//! of (pair × function-unit × class) [`UnitTask`]s; the tasks then run on a
//! **single shared worker pool** ([`run_chunked_tasks`]), and results are
//! assembled in canonical task order. The invariants this buys:
//!
//! * **no per-pair pool spawn** — one pool serves an entire
//!   `query`/`query_many` call, however many pairs it expands to;
//! * **worker-count independence** — each task is pure (its Monte Carlo
//!   seed derives from the task identity, never from scheduling), and
//!   assembly order is the expansion order, so results are byte-identical
//!   for `workers = 1..N`;
//! * **batch amortisation** — `query_many` expands every query before
//!   scheduling, so pool startup and stragglers amortise across the batch.
//!
//! Cache lookups stay on the coordinating thread: hits are spliced into the
//! plan, only misses are scheduled, and identical (pair, clause) requests
//! appearing several times in one batch are evaluated once.
//!
//! Every call reports through [`polygamy_obs`]: stage wall times
//! (`core.stage.*_ns`), task/cache counters (`core.*`), and — when the
//! calling thread is inside [`polygamy_obs::trace::record`] — the same
//! events into the per-query trace (spans `cache-resolve`, `expand`,
//! `evaluate`, `assemble`). Instrumentation never touches the result
//! values, so traced and untraced executions stay byte-identical (the
//! determinism matrix pins this).

use crate::cache::QueryCache;
use crate::error::{Error, Result};
use crate::framework::{CityGeometry, Config};
use crate::index::{DatasetEntry, IndexView};
use crate::operator::{evaluate_unit, expand_pair_tasks, UnitTask};
use crate::query::RelationshipQuery;
use crate::relationship::Relationship;
use polygamy_mapreduce::run_chunked_tasks;
use polygamy_obs::{names, trace, Counter};
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Cached registry handles for the executor's metrics — resolved once
/// per process, so the hot path pays only relaxed atomic adds.
struct ExecMetrics {
    queries: Arc<Counter>,
    tasks_expanded: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    plan_ns: Arc<Counter>,
    expand_ns: Arc<Counter>,
    evaluate_ns: Arc<Counter>,
    assemble_ns: Arc<Counter>,
}

fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = polygamy_obs::global();
        ExecMetrics {
            queries: r.counter(names::CORE_QUERIES),
            tasks_expanded: r.counter(names::CORE_TASKS_EXPANDED),
            cache_hits: r.counter(names::CORE_QUERY_CACHE_HITS),
            cache_misses: r.counter(names::CORE_QUERY_CACHE_MISSES),
            cache_evictions: r.counter(names::CORE_QUERY_CACHE_EVICTIONS),
            plan_ns: r.counter(names::CORE_STAGE_PLAN_NS),
            expand_ns: r.counter(names::CORE_STAGE_EXPAND_NS),
            evaluate_ns: r.counter(names::CORE_STAGE_EVALUATE_NS),
            assemble_ns: r.counter(names::CORE_STAGE_ASSEMBLE_NS),
        }
    })
}

/// Elapsed nanoseconds, saturating into `u64`.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// How one canonical pair of a planned query is satisfied.
enum PairSource {
    /// Served from the query cache.
    Cached(Arc<Vec<Relationship>>),
    /// Evaluated by this batch; index into the miss list.
    Pending(usize),
}

/// One distinct (pair, clause) evaluation this batch owes.
struct Miss<'q> {
    /// Cache key: canonical dataset pair + clause fingerprint.
    key: (usize, usize, u64),
    /// The clause to evaluate under (clauses with equal fingerprints are
    /// interchangeable by construction of [`crate::query::Clause::cache_key`]).
    clause: &'q crate::query::Clause,
}

/// Chunk size for scheduling `n_tasks` evaluation tasks on `workers`
/// threads: large enough to amortise queue traffic on huge expansions,
/// small enough (≥ 8 chunks per worker) to keep stragglers from starving
/// the pool. Chunking never affects results, only scheduling granularity.
pub(crate) fn task_chunk_size(n_tasks: usize, workers: usize) -> usize {
    (n_tasks / (workers.max(1) * 8)).max(1)
}

/// Which shard owns each cataloged data set — the routing table of the
/// scatter-gather executor.
///
/// A sharded store partitions its data sets across independent shard
/// files; the executor routes every expanded `UnitTask` to exactly one
/// owning shard so each shard's task subset runs contiguously on the
/// worker pool (threads today, `polygamy_mapreduce::Cluster` processes
/// later). Routing is a pure function of the *task identity*: a task
/// pairing data sets `(a, b)` belongs to the shard owning `min(a, b)` —
/// the canonical pair orientation — so the grouping is deterministic for
/// any worker layout. Results are gathered back into canonical task order
/// before assembly, so the output is byte-identical for **any shard
/// count**; [`ShardMap::monolithic`] (every data set on shard 0) routes
/// exactly like the unsharded executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Owning shard per catalog index.
    shard_of: Vec<usize>,
    /// Total number of shards (≥ 1, even when no data set maps to some).
    n_shards: usize,
}

impl ShardMap {
    /// The trivial map: every data set on shard 0 — routing under it is
    /// the identity permutation, i.e. today's flat executor.
    pub fn monolithic(n_datasets: usize) -> Self {
        Self {
            shard_of: vec![0; n_datasets],
            n_shards: 1,
        }
    }

    /// Builds a map from an explicit per-data-set shard assignment.
    /// Returns `None` when an assignment points past `n_shards` or
    /// `n_shards` is zero.
    pub fn new(shard_of: Vec<usize>, n_shards: usize) -> Option<Self> {
        if n_shards == 0 || shard_of.iter().any(|&s| s >= n_shards) {
            return None;
        }
        Some(Self { shard_of, n_shards })
    }

    /// Number of shards in the layout.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Owning shard of one data set (catalog index). Indices beyond the
    /// assignment — impossible for maps built from the same catalog the
    /// query resolves against — fall back to shard 0.
    pub fn shard_of(&self, dataset: usize) -> usize {
        self.shard_of.get(dataset).copied().unwrap_or(0)
    }

    /// The one shard a task pairing data sets `a` and `b` routes to: the
    /// owner of the canonical pair's first element, `min(a, b)`.
    pub fn route(&self, a: usize, b: usize) -> usize {
        self.shard_of(a.min(b))
    }

    /// True when routing is the identity (a single shard): the executor
    /// skips the scatter permutation entirely.
    pub fn is_monolithic(&self) -> bool {
        self.n_shards <= 1
    }
}

/// The scatter ordering: task indices grouped by owning shard (ascending),
/// stable within each shard — a permutation of `0..tasks.len()` computed
/// with one counting pass, so grouping cost is O(tasks + shards).
fn scatter_order(tasks: &[UnitTask<'_>], shards: &ShardMap) -> Vec<usize> {
    let n_shards = shards.n_shards();
    let mut counts = vec![0usize; n_shards];
    for t in tasks {
        counts[shards.route(t.e1.dataset_index, t.e2.dataset_index)] += 1;
    }
    let mut starts = vec![0usize; n_shards];
    let mut acc = 0;
    for (s, c) in counts.iter().enumerate() {
        starts[s] = acc;
        acc += c;
    }
    let mut order = vec![0usize; tasks.len()];
    for (i, t) in tasks.iter().enumerate() {
        let s = shards.route(t.e1.dataset_index, t.e2.dataset_index);
        order[starts[s]] = i;
        starts[s] += 1;
    }
    order
}

/// Deterministic presentation order: strongest |τ| first, ties broken by
/// function names, resolution and class.
///
/// Scores are compared with [`f64::total_cmp`]: a non-finite score —
/// possible on degenerate inputs such as constant functions with custom
/// thresholds — sorts to a stable position (NaN |τ| first, as the largest
/// value in total order) instead of panicking the query.
pub(crate) fn sort_relationships(rels: &mut [Relationship]) {
    rels.sort_by(|x, y| {
        y.score()
            .abs()
            .total_cmp(&x.score().abs())
            .then_with(|| x.left.to_string().cmp(&y.left.to_string()))
            .then_with(|| x.right.to_string().cmp(&y.right.to_string()))
            .then_with(|| x.resolution.label().cmp(&y.resolution.label()))
            .then_with(|| x.class.label().cmp(y.class.label()))
    });
}

/// Resolves one collection of a query against a catalog: `None` ranges
/// over every cataloged data set, explicit names must resolve.
fn resolve_collection(
    datasets: &[DatasetEntry],
    names: &Option<Vec<String>>,
) -> Result<Vec<usize>> {
    match names {
        None => Ok((0..datasets.len()).collect()),
        Some(list) => list
            .iter()
            .map(|n| {
                datasets
                    .iter()
                    .position(|d| d.meta.name == *n)
                    .ok_or_else(|| Error::UnknownDataset(n.clone()))
            })
            .collect(),
    }
}

/// The catalog indices a query's task expansion will touch — every data
/// set named (or ranged over) by either collection, deduplicated and
/// sorted.
///
/// This is the executor's *footprint report*: a demand-paged store
/// session calls it before evaluation to fault in exactly the function
/// segments the expansion can reach — combined with
/// [`Clause::admits_resolution`](crate::query::Clause::admits_resolution)
/// per segment — instead of materializing the whole store. Unknown names
/// yield the same [`Error::UnknownDataset`] the evaluation itself would.
pub fn query_datasets(datasets: &[DatasetEntry], query: &RelationshipQuery) -> Result<Vec<usize>> {
    let mut touched: Vec<usize> = resolve_collection(datasets, &query.left)?;
    touched.extend(resolve_collection(datasets, &query.right)?);
    touched.sort_unstable();
    touched.dedup();
    Ok(touched)
}

/// Evaluates a batch of relationship queries against an index view on one
/// shared worker pool — the read path behind `DataPolygamy::{query,
/// query_many}` and `StoreSession::{query, query_many}`.
///
/// Returns one result vector per input query, in input order. Pairs are
/// deduplicated within each query (the operator is symmetric up to swapping
/// left/right) and evaluations are deduplicated across the whole batch;
/// per-pair results are served from `cache` keyed by the clause
/// fingerprint and inserted on evaluation.
pub(crate) fn execute_queries(
    index: &IndexView<'_>,
    geometry: &CityGeometry,
    config: &Config,
    cache: &QueryCache,
    queries: &[RelationshipQuery],
) -> Result<Vec<Vec<Relationship>>> {
    let shards = ShardMap::monolithic(index.datasets().len());
    execute_queries_routed(index, geometry, config, cache, queries, &shards)
}

/// [`execute_queries`] with an explicit shard routing table — the
/// scatter-gather coordinator behind sharded `StoreSession`s. With a
/// [`ShardMap::monolithic`] map this is byte-identical to the flat path
/// (the scatter permutation is skipped entirely); with a real map, tasks
/// are grouped per owning shard before evaluation and results are gathered
/// back into canonical task order, so the output never depends on the
/// shard layout.
pub(crate) fn execute_queries_routed(
    index: &IndexView<'_>,
    geometry: &CityGeometry,
    config: &Config,
    cache: &QueryCache,
    queries: &[RelationshipQuery],
    shards: &ShardMap,
) -> Result<Vec<Vec<Relationship>>> {
    let metrics = exec_metrics();
    metrics.queries.add(queries.len() as u64);
    trace::add("queries", queries.len() as u64);

    // ---- Plan: resolve names, canonicalise pairs, split hits from misses.
    let t_plan = Instant::now();
    let plan_span = trace::span("cache-resolve");
    let resolve = |names: &Option<Vec<String>>| -> Result<Vec<usize>> {
        resolve_collection(index.datasets(), names)
    };
    let mut n_hits = 0u64;
    let mut n_misses = 0u64;
    let mut misses: Vec<Miss> = Vec::new();
    let mut miss_of: HashMap<(usize, usize, u64), usize> = HashMap::new();
    let mut plans: Vec<Vec<PairSource>> = Vec::with_capacity(queries.len());
    for query in queries {
        let left = resolve(&query.left)?;
        let right = resolve(&query.right)?;
        let clause_key = query.clause.cache_key();
        // All-pairs queries produce exactly n·(n−1)/2 canonical pairs;
        // explicit collections at most |left|·|right|.
        let cap = if query.left.is_none() && query.right.is_none() {
            let n = left.len();
            n * n.saturating_sub(1) / 2
        } else {
            left.len() * right.len()
        };
        let mut plan: Vec<PairSource> = Vec::with_capacity(cap);
        let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(cap);
        for &a in &left {
            for &b in &right {
                if a == b {
                    continue;
                }
                // Canonicalise so (a, b) and (b, a) share cache entries;
                // results are reported with the canonical orientation.
                let pair = (a.min(b), a.max(b));
                if !seen.insert(pair) {
                    continue;
                }
                let key = (pair.0, pair.1, clause_key);
                match cache.get(&key) {
                    Some(hit) => {
                        n_hits += 1;
                        plan.push(PairSource::Cached(hit));
                    }
                    None => {
                        n_misses += 1;
                        let mi = *miss_of.entry(key).or_insert_with(|| {
                            misses.push(Miss {
                                key,
                                clause: &query.clause,
                            });
                            misses.len() - 1
                        });
                        plan.push(PairSource::Pending(mi));
                    }
                }
            }
        }
        plans.push(plan);
    }
    drop(plan_span);
    metrics.plan_ns.add(elapsed_ns(t_plan));
    metrics.cache_hits.add(n_hits);
    metrics.cache_misses.add(n_misses);
    trace::add("cache_hits", n_hits);
    trace::add("cache_misses", n_misses);

    // ---- Expand every miss into its flat unit-task list (geometry is
    // validated here, on the coordinating thread).
    let t_expand = Instant::now();
    let expand_span = trace::span("expand");
    let mut tasks: Vec<UnitTask> = Vec::new();
    let mut task_ranges: Vec<Range<usize>> = Vec::with_capacity(misses.len());
    for miss in &misses {
        let start = tasks.len();
        expand_pair_tasks(
            index,
            geometry,
            miss.key.0,
            miss.key.1,
            miss.clause,
            &mut tasks,
        )?;
        task_ranges.push(start..tasks.len());
    }
    drop(expand_span);
    metrics.expand_ns.add(elapsed_ns(t_expand));
    metrics.tasks_expanded.add(tasks.len() as u64);
    trace::add("tasks_expanded", tasks.len() as u64);

    // ---- Evaluate the entire batch on one shared pool. Under a real
    // shard map the tasks are scattered (grouped per owning shard, so each
    // shard's subset runs contiguously) and the results gathered back into
    // canonical task order; assembly below never sees the difference.
    let t_evaluate = Instant::now();
    let evaluate_span = trace::span("evaluate");
    let workers = config.cluster.workers();
    let chunk = task_chunk_size(tasks.len(), workers);
    let results: Vec<Option<Relationship>> = if shards.is_monolithic() {
        run_chunked_tasks(workers, tasks.len(), chunk, |i| {
            evaluate_unit(&tasks[i], config)
        })
    } else {
        let order = scatter_order(&tasks, shards);
        let scattered = run_chunked_tasks(workers, order.len(), chunk, |k| {
            evaluate_unit(&tasks[order[k]], config)
        });
        // Gather: undo the scatter permutation. `order` is a permutation
        // of 0..tasks.len(), so every slot is written exactly once.
        let mut gathered: Vec<Option<Relationship>> = vec![None; tasks.len()];
        for (&i, r) in order.iter().zip(scattered) {
            gathered[i] = r;
        }
        gathered
    };
    drop(evaluate_span);
    metrics.evaluate_ns.add(elapsed_ns(t_evaluate));

    // ---- Assemble per-miss results in canonical task order; fill the cache.
    let t_assemble = Instant::now();
    let assemble_span = trace::span("assemble");
    let mut results = results.into_iter();
    let mut evaluated: Vec<Arc<Vec<Relationship>>> = Vec::with_capacity(misses.len());
    for (miss, range) in misses.iter().zip(&task_ranges) {
        let rels: Vec<Relationship> = results.by_ref().take(range.len()).flatten().collect();
        let rels = Arc::new(rels);
        if cache.insert(miss.key, Arc::clone(&rels)) {
            metrics.cache_evictions.inc();
        }
        evaluated.push(rels);
    }

    // ---- Stitch each query's output from hits and fresh evaluations.
    let mut out = Vec::with_capacity(plans.len());
    for plan in plans {
        let mut rels: Vec<Relationship> = Vec::new();
        for source in plan {
            match source {
                PairSource::Cached(r) => rels.extend(r.iter().cloned()),
                PairSource::Pending(mi) => rels.extend(evaluated[mi].iter().cloned()),
            }
        }
        sort_relationships(&mut rels);
        out.push(rels);
    }
    drop(assemble_span);
    metrics.assemble_ns.add(elapsed_ns(t_assemble));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FunctionRef;
    use crate::relationship::RelationshipMeasures;
    use polygamy_stdata::{Resolution, SpatialResolution, TemporalResolution};
    use polygamy_topology::FeatureClass;

    fn rel(left: &str, score: f64) -> Relationship {
        Relationship {
            left: FunctionRef {
                dataset: left.into(),
                function: "density".into(),
            },
            right: FunctionRef {
                dataset: "other".into(),
                function: "density".into(),
            },
            resolution: Resolution::new(SpatialResolution::City, TemporalResolution::Hour),
            class: FeatureClass::Salient,
            measures: RelationshipMeasures {
                n_pos: 1,
                n_neg: 0,
                n_left: 1,
                n_right: 1,
                score,
                strength: 1.0,
            },
            p_value: 1.0,
            significant: false,
        }
    }

    #[test]
    fn sort_is_total_even_with_nan_scores() {
        // A degenerate pair can surface a non-finite score; the sort must
        // order it deterministically instead of panicking.
        let mut rels = vec![rel("a", 0.25), rel("b", f64::NAN), rel("c", 0.9)];
        sort_relationships(&mut rels);
        // NaN |τ| is the largest value in IEEE total order.
        assert!(rels[0].score().is_nan());
        assert_eq!(rels[1].left.dataset, "c");
        assert_eq!(rels[2].left.dataset, "a");
        // And sorting is idempotent (stable output on resort).
        let once = rels.clone();
        sort_relationships(&mut rels);
        assert_eq!(format!("{rels:?}"), format!("{once:?}"));
    }

    #[test]
    fn sort_breaks_ties_by_name() {
        let mut rels = vec![rel("zeta", 0.5), rel("alpha", 0.5), rel("mid", 0.5)];
        sort_relationships(&mut rels);
        let names: Vec<&str> = rels.iter().map(|r| r.left.dataset.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn chunk_size_scales_with_tasks() {
        assert_eq!(task_chunk_size(0, 4), 1);
        assert_eq!(task_chunk_size(10, 4), 1);
        assert_eq!(task_chunk_size(3_200, 4), 100);
        // Degenerate worker counts never panic or return zero.
        assert_eq!(task_chunk_size(100, 0), 12);
    }

    #[test]
    fn shard_map_construction_and_routing() {
        let m = ShardMap::monolithic(5);
        assert!(m.is_monolithic());
        assert_eq!(m.n_shards(), 1);
        assert_eq!(m.route(3, 1), 0);

        assert!(ShardMap::new(vec![0, 1, 2], 0).is_none());
        assert!(ShardMap::new(vec![0, 3], 3).is_none());
        let m = ShardMap::new(vec![1, 0, 1], 2).unwrap();
        assert!(!m.is_monolithic());
        // The canonical pair orientation decides the owner.
        assert_eq!(m.route(0, 2), m.shard_of(0));
        assert_eq!(m.route(2, 0), m.shard_of(0));
        assert_eq!(m.route(1, 2), m.shard_of(1));
        // Out-of-assignment indices fall back to shard 0.
        assert_eq!(m.shard_of(99), 0);
    }
}

#[cfg(test)]
mod routing_tests {
    //! Scatter routing invariants, property-tested over arbitrary corpora
    //! and shard maps: every expanded [`UnitTask`] routes to exactly one
    //! shard that owns one of its data sets, and the per-shard task groups
    //! partition the monolithic task list — none lost, none duplicated.

    use super::*;
    use crate::framework::DataPolygamy;
    use crate::query::Clause;
    use polygamy_stdata::{
        AttributeMeta, Dataset, DatasetBuilder, DatasetMeta, GeoPoint, SpatialResolution,
        TemporalResolution,
    };
    use proptest::prelude::*;

    fn bumpy_dataset(name: &str, bump_at: i64, hours: i64) -> Dataset {
        let meta = DatasetMeta {
            name: name.into(),
            spatial_resolution: SpatialResolution::City,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("signal"));
        for h in 0..hours {
            let v = if h == bump_at % hours {
                20.0
            } else {
                (h % 12) as f64
            };
            b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v]).unwrap();
        }
        b.build().unwrap()
    }

    /// Expands the all-pairs task list exactly like the executor's expand
    /// stage, returning each task's (left, right) data set indices.
    fn expanded_pairs(dp: &DataPolygamy, clause: &Clause) -> Vec<(usize, usize)> {
        let index = dp.index().unwrap();
        let view = IndexView::full(index);
        let n = index.datasets.len();
        let mut tasks: Vec<UnitTask> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                expand_pair_tasks(&view, dp.geometry(), a, b, clause, &mut tasks).unwrap();
            }
        }
        tasks
            .iter()
            .map(|t| (t.e1.dataset_index, t.e2.dataset_index))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn every_task_routes_to_exactly_one_owning_shard(
            bumps in prop::collection::vec(0i64..96, 2..6),
            n_shards in 1usize..4,
            shard_salt in 0usize..7,
        ) {
            let datasets: Vec<Dataset> = bumps
                .iter()
                .enumerate()
                .map(|(i, &b)| bumpy_dataset(&format!("d{i}"), b, 96))
                .collect();
            let mut dp = DataPolygamy::new(
                CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
                Config::fast_test(),
            );
            for d in &datasets {
                dp.add_dataset(d.clone());
            }
            dp.build_index();

            // An arbitrary (but valid) shard assignment.
            let shard_of: Vec<usize> = (0..datasets.len())
                .map(|di| (di + shard_salt) % n_shards)
                .collect();
            let map = ShardMap::new(shard_of.clone(), n_shards).unwrap();

            let clause = Clause::default().permutations(10).include_insignificant();
            let pairs = expanded_pairs(&dp, &clause);
            // Equal-length hourly corpora always overlap, so expansion is
            // never empty — the properties below are exercised for real.
            prop_assert!(!pairs.is_empty());

            // Route every task; the owner must be a shard that actually
            // contains one of the task's data sets (the canonical-pair
            // anchor), and routing is total: exactly one shard per task.
            let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
            for (ti, &(d1, d2)) in pairs.iter().enumerate() {
                let s = map.route(d1, d2);
                prop_assert!(s < n_shards);
                prop_assert_eq!(s, shard_of[d1.min(d2)]);
                per_shard[s].push(ti);
            }

            // The per-shard groups partition the monolithic task list: the
            // union (in scatter order) is a permutation of 0..n — no task
            // lost, none duplicated.
            let union: Vec<usize> = per_shard.iter().flatten().copied().collect();
            let mut sorted = union.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted, (0..pairs.len()).collect::<Vec<_>>());

            // And the executor's own scatter order is exactly that
            // grouped union (stable within each shard).
            let index = dp.index().unwrap();
            let view = IndexView::full(index);
            let mut tasks: Vec<UnitTask> = Vec::new();
            let n = index.datasets.len();
            for a in 0..n {
                for b in (a + 1)..n {
                    expand_pair_tasks(&view, dp.geometry(), a, b, &clause, &mut tasks).unwrap();
                }
            }
            prop_assert_eq!(scatter_order(&tasks, &map), union);

            // A monolithic map is the identity ordering.
            let mono = ShardMap::monolithic(datasets.len());
            prop_assert_eq!(
                scatter_order(&tasks, &mono),
                (0..tasks.len()).collect::<Vec<_>>()
            );
        }
    }
}

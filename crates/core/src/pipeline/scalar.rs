//! Scalar Function Computation job (paper Section 5.2, Appendix C).
//!
//! For a data set published at native resolution `(s, t)`, scalar functions
//! are computed at every evaluable resolution reachable in the DAG of
//! Figure 6 — e.g. a GPS/second data set yields 3 spatial × 4 temporal
//! resolutions for every function spec. Each (spec, resolution) unit is
//! independent, so the job is a parallel map.
//!
//! [`density_job`] additionally provides the record-level map-reduce
//! formulation (map tuples → `(cell, 1)`, combine, reduce to counts) that
//! mirrors the paper's Hadoop job shape; it is exercised by tests and the
//! cluster-scaling experiment, and must agree exactly with the columnar
//! aggregation path.

use crate::framework::CityGeometry;
use crate::function::FunctionSpec;
use polygamy_mapreduce::{par_map, run_job, Cluster, JobConfig, JobMetrics};
use polygamy_stdata::{
    aggregate, Dataset, Resolution, ResolutionDag, ScalarField, SpatialPartition,
    TemporalResolution,
};

/// Computes every scalar function of `dataset` at every reachable
/// resolution for which `geometry` has a partition.
///
/// Returns `(spec, field)` pairs; specs repeat across resolutions.
pub fn compute_scalar_functions(
    cluster: Cluster,
    geometry: &CityGeometry,
    dataset: &Dataset,
) -> Vec<(FunctionSpec, ScalarField)> {
    let native = Resolution::new(
        dataset.meta.spatial_resolution,
        dataset.meta.temporal_resolution,
    );
    let specs = FunctionSpec::enumerate(dataset);
    let mut units: Vec<(FunctionSpec, Resolution)> = Vec::new();
    for resolution in ResolutionDag::reachable(native) {
        if geometry.partition(resolution.spatial).is_none() {
            continue;
        }
        for spec in &specs {
            units.push((spec.clone(), resolution));
        }
    }
    par_map(cluster, units, |(spec, resolution)| {
        let partition = geometry
            .partition(resolution.spatial)
            .expect("filtered above");
        let field = aggregate(dataset, partition, resolution.temporal, spec.kind, None)
            .expect("reachable resolutions aggregate cleanly");
        (spec, field)
    })
    .into_iter()
    .collect()
}

/// The record-level map-reduce density job: mirrors the paper's Hadoop
/// implementation where the map phase assigns each tuple to its
/// spatio-temporal cell and the reduce phase aggregates per cell.
///
/// Produces a field identical to the columnar
/// [`polygamy_stdata::aggregate()`] path (tested), and returns the job
/// metrics used by the speedup experiment.
pub fn density_job(
    cluster: Cluster,
    dataset: &Dataset,
    partition: &SpatialPartition,
    temporal: TemporalResolution,
) -> Option<(ScalarField, JobMetrics)> {
    let (start, end) = dataset.time_range().ok()?;
    let start_bucket = temporal.bucket_of(start);
    let n_steps = temporal.buckets_in_range(start, end);
    let n_regions = partition.len();
    let resolution = Resolution::new(partition.resolution, temporal);

    // Input splits: contiguous record ranges.
    let n_chunks = (cluster.workers() * 4).max(1);
    let chunk = dataset.len().div_ceil(n_chunks).max(1);
    let ranges: Vec<(usize, usize)> = (0..dataset.len())
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(dataset.len())))
        .collect();

    let times = dataset.times();
    let locations = dataset.locations();
    let use_native =
        dataset.meta.spatial_resolution == partition.resolution && dataset.regions().is_some();
    let (cells, metrics) = run_job(
        cluster,
        JobConfig::default(),
        ranges,
        |(lo, hi), emit: &mut dyn FnMut(u64, u64)| {
            for i in lo..hi {
                let region = if n_regions == 1 {
                    Some(0u32)
                } else if use_native {
                    let r = dataset.regions().expect("checked")[i];
                    ((r as usize) < n_regions).then_some(r)
                } else {
                    partition.locate(locations[i])
                };
                let Some(region) = region else { continue };
                let step = (temporal.bucket_of(times[i]) - start_bucket) as usize;
                emit(step as u64 * n_regions as u64 + region as u64, 1);
            }
        },
        Some(|_k: &u64, vs: Vec<u64>| vs.into_iter().sum::<u64>()),
        |_k, vs: Vec<u64>| vs.into_iter().sum::<u64>(),
    );
    let mut field = ScalarField::filled(resolution, n_regions, start_bucket, n_steps, 0.0);
    for (cell, count) in cells {
        field.values[cell as usize] = count as f64;
    }
    Some((field, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygamy_stdata::{
        AttributeMeta, DatasetBuilder, DatasetMeta, FunctionKind, GeoPoint, Polygon,
        SpatialResolution,
    };

    fn geometry() -> CityGeometry {
        let nbhd = SpatialPartition::new(
            SpatialResolution::Neighborhood,
            vec![
                Polygon::rect(0.0, 0.0, 1.0, 1.0),
                Polygon::rect(1.0, 0.0, 2.0, 1.0),
            ],
            vec![vec![1], vec![0]],
        )
        .unwrap();
        CityGeometry {
            zip: None,
            neighborhood: Some(nbhd),
            city: SpatialPartition::city(0.0, 0.0, 2.0, 1.0),
        }
    }

    fn gps_dataset(n: usize) -> Dataset {
        let meta = DatasetMeta {
            name: "trips".into(),
            spatial_resolution: SpatialResolution::Gps,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("fare"));
        for i in 0..n {
            let x = (i % 20) as f64 / 10.0;
            let t = (i as i64 % 72) * 3_600 + 30;
            b.push(GeoPoint::new(x, 0.5), t, &[i as f64 % 30.0])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn computes_all_units() {
        let d = gps_dataset(500);
        let out = compute_scalar_functions(Cluster::local(2), &geometry(), &d);
        // Specs: density + avg(fare) = 2. Resolutions: (nbhd, city) × 4
        // temporal = 8 (zip missing from geometry).
        assert_eq!(out.len(), 16);
        // Every field is non-empty and at a reachable resolution.
        for (spec, field) in &out {
            assert!(!field.is_empty(), "{spec} empty");
        }
    }

    #[test]
    fn city_native_dataset_gets_city_only() {
        let meta = DatasetMeta {
            name: "weather".into(),
            spatial_resolution: SpatialResolution::City,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("wind"));
        for i in 0..48 {
            b.push(GeoPoint::new(1.0, 0.5), i * 3_600, &[i as f64])
                .unwrap();
        }
        let d = b.build().unwrap();
        let out = compute_scalar_functions(Cluster::local(1), &geometry(), &d);
        // 2 specs × 4 temporal × 1 spatial (city only).
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|(_, f)| f.n_regions == 1));
    }

    #[test]
    fn density_job_matches_columnar_aggregate() {
        let d = gps_dataset(2_000);
        let geo = geometry();
        for workers in [1, 4] {
            let (field, metrics) = density_job(
                Cluster::local(workers),
                &d,
                geo.neighborhood.as_ref().unwrap(),
                TemporalResolution::Hour,
            )
            .unwrap();
            let reference = aggregate(
                &d,
                geo.neighborhood.as_ref().unwrap(),
                TemporalResolution::Hour,
                FunctionKind::Density,
                None,
            )
            .unwrap();
            assert_eq!(field, reference, "workers={workers}");
            assert!(metrics.records_mapped > 0);
        }
    }

    #[test]
    fn density_job_empty_dataset() {
        let meta = DatasetMeta {
            name: "empty".into(),
            spatial_resolution: SpatialResolution::Gps,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let d = DatasetBuilder::new(meta).build().unwrap();
        assert!(density_job(
            Cluster::local(1),
            &d,
            &geometry().city,
            TemporalResolution::Hour
        )
        .is_none());
    }
}

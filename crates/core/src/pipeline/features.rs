//! Feature Identification job (paper Sections 3 + 5.2, Appendix C).
//!
//! Per scalar function: build the domain graph, compute join and split
//! trees, derive per-seasonal-interval thresholds from persistence, and
//! extract salient + extreme feature sets. Each function is independent —
//! a parallel map over [`polygamy_mapreduce`].

use crate::framework::CityGeometry;
use crate::function::FunctionSpec;
use crate::index::FunctionEntry;
use polygamy_mapreduce::{par_map, Cluster};
use polygamy_stdata::temporal::SeasonalInterval;
use polygamy_stdata::ScalarField;
use polygamy_topology::{
    seasonal_thresholds, DomainGraph, FeatureSets, MergeTree, SeasonalThresholds,
};

/// Computes trees, thresholds and features for one scalar field.
///
/// Returns the feature sets, the thresholds, and the merge-tree size
/// (join + split critical points). This is the reusable unit behind both
/// the indexing job and the ad-hoc experiments (robustness, persistence
/// diagrams).
pub fn field_features(
    spatial_adjacency: &[Vec<u32>],
    field: &ScalarField,
) -> (FeatureSets, SeasonalThresholds, usize) {
    let graph = DomainGraph::new(spatial_adjacency, field.n_steps);
    let join = MergeTree::join(&graph, &field.values);
    let split = MergeTree::split(&graph, &field.values);
    let season = SeasonalInterval::for_resolution(field.resolution.temporal);
    let interval_of_step: Vec<i64> = (0..field.n_steps)
        .map(|z| season.interval_of(field.step_start(z)))
        .collect();
    let thresholds = seasonal_thresholds(&join, &split, field.n_regions, &interval_of_step);
    let features = FeatureSets::compute(&graph, &field.values, &join, &split, &thresholds);
    let tree_nodes = join.node_count() + split.node_count();
    (features, thresholds, tree_nodes)
}

/// Runs feature identification for a batch of scalar functions, producing
/// index entries.
pub fn identify_features(
    cluster: Cluster,
    geometry: &CityGeometry,
    dataset_index: usize,
    fields: Vec<(FunctionSpec, ScalarField)>,
    keep_fields: bool,
) -> Vec<FunctionEntry> {
    par_map(cluster, fields, |(spec, field)| {
        let adjacency = geometry
            .adjacency(field.resolution.spatial)
            .expect("field was computed from a geometry partition");
        let (features, thresholds, tree_nodes) = field_features(adjacency, &field);
        FunctionEntry {
            spec,
            dataset_index,
            resolution: field.resolution,
            n_regions: field.n_regions,
            start_bucket: field.start_bucket,
            n_steps: field.n_steps,
            features,
            thresholds,
            field: keep_fields.then_some(field),
            tree_nodes,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygamy_stdata::{Resolution, SpatialResolution, TemporalResolution};

    fn spiky_field(n_steps: usize) -> ScalarField {
        let res = Resolution::new(SpatialResolution::City, TemporalResolution::Hour);
        let mut values = vec![0.0; n_steps];
        for (i, v) in values.iter_mut().enumerate() {
            *v = ((i % 24) as f64 / 24.0).sin();
        }
        values[n_steps / 2] = 50.0;
        values[n_steps / 4] = -50.0;
        ScalarField::time_series(res, 0, values)
    }

    #[test]
    fn field_features_finds_spikes() {
        let field = spiky_field(24 * 60);
        let (features, thresholds, tree_nodes) = field_features(&[vec![]], &field);
        assert!(features.salient.pos.get(24 * 30));
        assert!(features.salient.neg.get(24 * 15));
        assert!(tree_nodes > 2);
        // Monthly seasonal intervals for hourly data: 60 days ≈ 2-3 months.
        assert!(thresholds.interval_ids.len() >= 2);
    }

    #[test]
    fn identify_features_builds_entries() {
        use crate::framework::CityGeometry;
        let geometry = CityGeometry::city_only(0.0, 0.0, 1.0, 1.0);
        let fields = vec![
            (FunctionSpec::density("d"), spiky_field(100)),
            (FunctionSpec::density("d"), spiky_field(200)),
        ];
        let entries = identify_features(Cluster::local(2), &geometry, 3, fields, true);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].dataset_index, 3);
        assert_eq!(entries[0].n_steps, 100);
        assert!(entries[0].field.is_some());
        let entries_nofield = identify_features(
            Cluster::local(2),
            &geometry,
            3,
            vec![(FunctionSpec::density("d"), spiky_field(50))],
            false,
        );
        assert!(entries_nofield[0].field.is_none());
    }
}

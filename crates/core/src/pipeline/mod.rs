//! The three indexing/query jobs (paper Section 5.4, Appendix C).
//!
//! 1. [`scalar`] — *Scalar Function Computation*: maps raw tuples into
//!    spatio-temporal cells and aggregates all scalar functions per cell;
//! 2. [`features`] — *Feature Identification*: per scalar function, builds
//!    the merge-tree index, derives thresholds and precomputes features;
//! 3. relationship computation lives in [`crate::operator`], evaluating
//!    function pairs over precomputed features.
//!
//! All three are embarrassingly parallel and run on the
//! [`polygamy_mapreduce`] substrate.

pub mod features;
pub mod scalar;

pub use features::{field_features, identify_features};
pub use scalar::{compute_scalar_functions, density_job};

//! The polygamy index: catalog of data sets, scalar functions and their
//! precomputed features (paper Section 5.2).
//!
//! For every data set, scalar functions are computed at every viable
//! spatio-temporal resolution; each function gets a merge-tree pass that
//! derives thresholds and precomputes salient and extreme feature sets.
//! Queries touch only this index — never the raw data — which is what makes
//! relationship evaluation independent of input size (paper Section 6.1).

use crate::error::{Error, Result};
use crate::function::FunctionSpec;
use polygamy_stdata::{DatasetMeta, Resolution, ScalarField};
use polygamy_topology::{FeatureSets, SeasonalThresholds};
use serde::{Deserialize, Serialize};

/// Catalog entry for one data set (the paper's Table 1 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// Data set metadata.
    pub meta: DatasetMeta,
    /// Number of raw records.
    pub n_records: usize,
    /// Approximate raw size in bytes.
    pub raw_bytes: usize,
    /// Number of scalar-function specs derived from this data set.
    pub n_specs: usize,
}

/// One indexed scalar function at one resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionEntry {
    /// What this function computes.
    pub spec: FunctionSpec,
    /// Index into [`PolygamyIndex::datasets`].
    pub dataset_index: usize,
    /// Resolution of the field.
    pub resolution: Resolution,
    /// Number of spatial regions.
    pub n_regions: usize,
    /// First temporal bucket (global numbering).
    pub start_bucket: i64,
    /// Number of time steps.
    pub n_steps: usize,
    /// Precomputed salient + extreme features.
    pub features: FeatureSets,
    /// The per-seasonal-interval thresholds that produced them.
    pub thresholds: SeasonalThresholds,
    /// The scalar field, kept when `Config::keep_fields` is set (needed for
    /// custom-threshold clauses, baselines and robustness experiments).
    pub field: Option<ScalarField>,
    /// Merge-tree size (join + split critical points) — index statistics.
    pub tree_nodes: usize,
}

impl FunctionEntry {
    /// Overlapping bucket window with another entry at the same resolution,
    /// as `(start_bucket, n_steps)`; `None` when disjoint or resolutions
    /// differ.
    pub fn overlap(&self, other: &FunctionEntry) -> Option<(i64, usize)> {
        if self.resolution != other.resolution || self.n_regions != other.n_regions {
            return None;
        }
        let start = self.start_bucket.max(other.start_bucket);
        let end = (self.start_bucket + self.n_steps as i64)
            .min(other.start_bucket + other.n_steps as i64);
        if end <= start {
            None
        } else {
            Some((start, (end - start) as usize))
        }
    }

    /// Vertex range `[lo, hi)` covering buckets `[start, start + len)` of
    /// this entry's field (time-major layout).
    pub fn vertex_range(&self, start: i64, len: usize) -> (usize, usize) {
        let z0 = (start - self.start_bucket) as usize;
        (z0 * self.n_regions, (z0 + len) * self.n_regions)
    }

    /// Bytes used by the precomputed feature sets.
    pub fn feature_bytes(&self) -> usize {
        self.features.approx_bytes()
    }
}

/// Aggregate statistics of an index (paper Section 5.4 space accounting).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IndexStats {
    /// Data sets indexed.
    pub n_datasets: usize,
    /// (function, resolution) entries.
    pub n_functions: usize,
    /// Total raw input bytes.
    pub raw_bytes: usize,
    /// Bytes of stored scalar fields.
    pub field_bytes: usize,
    /// Bytes of precomputed feature bit vectors.
    pub feature_bytes: usize,
    /// Total merge-tree critical points.
    pub tree_nodes: usize,
}

/// The full index.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PolygamyIndex {
    /// Data set catalog.
    pub datasets: Vec<DatasetEntry>,
    /// All (function, resolution) entries.
    pub functions: Vec<FunctionEntry>,
}

/// A borrowed, possibly partial view of an index: the full catalog plus
/// any subset of function entries.
///
/// The read path (`run_query_view` / the flat executor) only ever needs
/// the catalog and the entries a query's task expansion touches, so a
/// caller that pages entries in on demand — `polygamy_store`'s lazy
/// sessions — can pin just those entries and evaluate without ever
/// materializing a whole [`PolygamyIndex`].
///
/// **Determinism contract:** `entries` must be in a canonical order that
/// does not depend on which subset is present (e.g. the store's manifest
/// order, or [`PolygamyIndex::functions`] order). Task expansion iterates
/// entries in the order given here; a subset presented in the same
/// relative order as the full set therefore expands to the same task list
/// and produces byte-identical results.
#[derive(Debug)]
pub struct IndexView<'a> {
    datasets: &'a [DatasetEntry],
    entries: Vec<&'a FunctionEntry>,
}

impl<'a> IndexView<'a> {
    /// A view over an explicit catalog and entry subset (see the
    /// determinism contract on [`IndexView`]).
    pub fn new(datasets: &'a [DatasetEntry], entries: Vec<&'a FunctionEntry>) -> Self {
        Self { datasets, entries }
    }

    /// The view of a fully materialized index.
    pub fn full(index: &'a PolygamyIndex) -> Self {
        Self {
            datasets: &index.datasets,
            entries: index.functions.iter().collect(),
        }
    }

    /// The data set catalog.
    pub fn datasets(&self) -> &'a [DatasetEntry] {
        self.datasets
    }

    /// Index of a data set by name.
    pub fn dataset_index(&self, name: &str) -> Result<usize> {
        self.datasets
            .iter()
            .position(|d| d.meta.name == name)
            .ok_or_else(|| Error::UnknownDataset(name.to_string()))
    }

    /// The function entries of one data set, in view order.
    pub fn functions_of(
        &self,
        dataset_index: usize,
    ) -> impl Iterator<Item = &'a FunctionEntry> + '_ {
        self.entries
            .iter()
            .copied()
            .filter(move |f| f.dataset_index == dataset_index)
    }

    /// Number of entries present in the view.
    pub fn n_entries(&self) -> usize {
        self.entries.len()
    }
}

impl PolygamyIndex {
    /// Index of a data set by name.
    pub fn dataset_index(&self, name: &str) -> Result<usize> {
        self.datasets
            .iter()
            .position(|d| d.meta.name == name)
            .ok_or_else(|| Error::UnknownDataset(name.to_string()))
    }

    /// All function entries belonging to a data set.
    pub fn functions_of(&self, dataset_index: usize) -> impl Iterator<Item = &FunctionEntry> {
        self.functions
            .iter()
            .filter(move |f| f.dataset_index == dataset_index)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            n_datasets: self.datasets.len(),
            n_functions: self.functions.len(),
            raw_bytes: self.datasets.iter().map(|d| d.raw_bytes).sum(),
            field_bytes: self
                .functions
                .iter()
                .filter_map(|f| f.field.as_ref().map(ScalarField::approx_bytes))
                .sum(),
            feature_bytes: self
                .functions
                .iter()
                .map(FunctionEntry::feature_bytes)
                .sum(),
            tree_nodes: self.functions.iter().map(|f| f.tree_nodes).sum(),
        }
    }

    /// Serialises the index to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| Error::Serialization(e.to_string()))
    }

    /// Restores an index from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| Error::Serialization(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygamy_stdata::{SpatialResolution, TemporalResolution};
    use polygamy_topology::{FeatureSet, Thresholds};

    fn entry(start: i64, steps: usize) -> FunctionEntry {
        FunctionEntry {
            spec: FunctionSpec::density("d"),
            dataset_index: 0,
            resolution: Resolution::new(SpatialResolution::City, TemporalResolution::Hour),
            n_regions: 1,
            start_bucket: start,
            n_steps: steps,
            features: FeatureSets {
                salient: FeatureSet::empty(steps),
                extreme: FeatureSet::empty(steps),
            },
            thresholds: SeasonalThresholds {
                interval_of_step: vec![0; steps],
                interval_ids: vec![0],
                per_interval: vec![Thresholds::none()],
            },
            field: None,
            tree_nodes: 0,
        }
    }

    #[test]
    fn overlap_windows() {
        let a = entry(0, 100);
        let b = entry(50, 100);
        assert_eq!(a.overlap(&b), Some((50, 50)));
        assert_eq!(b.overlap(&a), Some((50, 50)));
        let c = entry(200, 10);
        assert_eq!(a.overlap(&c), None);
        // Identical windows.
        assert_eq!(a.overlap(&a), Some((0, 100)));
    }

    #[test]
    fn overlap_requires_same_resolution() {
        let a = entry(0, 100);
        let mut b = entry(0, 100);
        b.resolution = Resolution::new(SpatialResolution::City, TemporalResolution::Day);
        assert_eq!(a.overlap(&b), None);
    }

    #[test]
    fn vertex_ranges() {
        let mut a = entry(10, 100);
        a.n_regions = 4;
        assert_eq!(a.vertex_range(10, 100), (0, 400));
        assert_eq!(a.vertex_range(20, 5), (40, 60));
    }

    #[test]
    fn catalog_lookup_and_stats() {
        let mut idx = PolygamyIndex::default();
        idx.datasets.push(DatasetEntry {
            meta: DatasetMeta {
                name: "taxi".into(),
                spatial_resolution: SpatialResolution::Gps,
                temporal_resolution: TemporalResolution::Hour,
                description: String::new(),
            },
            n_records: 10,
            raw_bytes: 320,
            n_specs: 1,
        });
        idx.functions.push(entry(0, 10));
        assert_eq!(idx.dataset_index("taxi").unwrap(), 0);
        assert!(idx.dataset_index("nope").is_err());
        assert_eq!(idx.functions_of(0).count(), 1);
        let stats = idx.stats();
        assert_eq!(stats.n_datasets, 1);
        assert_eq!(stats.n_functions, 1);
        assert_eq!(stats.raw_bytes, 320);
    }

    #[test]
    fn json_roundtrip() {
        let mut idx = PolygamyIndex::default();
        idx.functions.push(entry(5, 7));
        let json = idx.to_json().unwrap();
        let back = PolygamyIndex::from_json(&json).unwrap();
        // NaN thresholds make struct equality vacuously false; compare the
        // canonical JSON forms instead.
        assert_eq!(json, back.to_json().unwrap());
        assert_eq!(back.functions.len(), 1);
        assert!(back.functions[0].thresholds.per_interval[0]
            .salient_pos
            .is_nan());
    }
}

//! Restricted Monte Carlo significance testing (paper Section 4).
//!
//! The null hypothesis H0 is that two functions are independent in their
//! features. The observed score τ* is compared against the distribution of
//! scores over restricted randomisations of one function's features:
//!
//! * purely temporal domains (`n_regions == 1`) use toroidal *time
//!   rotations*;
//! * spatial domains use BFS *graph toroidal shifts* of the region
//!   adjacency (the same region mapping applied at every time step),
//!   exactly as the paper prescribes;
//! * [`PermutationScheme::SpatioTemporal`] additionally rotates time — the
//!   3-torus extension the paper lists as future work, kept here as an
//!   ablation option.

use crate::relationship::evaluate_features;
use polygamy_stats::permutation::{
    graph_toroidal_shift, spatiotemporal_shift, temporal_rotation, MonteCarlo,
};
use polygamy_topology::FeatureSet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which restricted randomisation family to draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PermutationScheme {
    /// Paper defaults: time rotations for 1-D functions, spatial graph
    /// shifts for spatial functions.
    Paper,
    /// Spatial graph shifts composed with time rotations (3-torus
    /// extension; paper Section 8).
    SpatioTemporal,
}

/// Runs the restricted Monte Carlo test for one candidate relationship.
///
/// `left`/`right` are feature sets aligned on a common window with
/// `n_regions × n_steps` vertices; `spatial_adjacency` is the region
/// adjacency of their (shared) spatial resolution. Returns the p-value of
/// the observed score under `mc.tail`.
// The argument list mirrors the paper's test definition (two feature sets,
// the domain, the observed statistic, the MC setup); a params struct would
// only re-name it.
#[allow(clippy::too_many_arguments)]
pub fn significance_test(
    left: &FeatureSet,
    right: &FeatureSet,
    spatial_adjacency: &[Vec<u32>],
    n_steps: usize,
    observed_score: f64,
    mc: &MonteCarlo,
    scheme: PermutationScheme,
    seed: u64,
) -> f64 {
    let n_regions = spatial_adjacency.len().max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut permuted_scores = Vec::with_capacity(mc.permutations);
    for _ in 0..mc.permutations {
        let perm = match (n_regions, scheme) {
            // 1-D: rotate time (never by 0 — identity tells us nothing).
            (1, _) => {
                let shift = rng.gen_range(1..n_steps.max(2));
                temporal_rotation(1, n_steps, shift)
            }
            (_, PermutationScheme::Paper) => {
                let spatial = graph_toroidal_shift(spatial_adjacency, &mut rng);
                spatiotemporal_shift(&spatial, n_steps, 0)
            }
            (_, PermutationScheme::SpatioTemporal) => {
                let spatial = graph_toroidal_shift(spatial_adjacency, &mut rng);
                let shift = rng.gen_range(0..n_steps.max(1));
                spatiotemporal_shift(&spatial, n_steps, shift)
            }
        };
        let shifted = left.permuted(&perm);
        permuted_scores.push(evaluate_features(&shifted, right).score);
    }
    mc.p_value(observed_score, &permuted_scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygamy_topology::BitVec;

    fn fs(n: usize, pos: &[usize], neg: &[usize]) -> FeatureSet {
        let mut p = BitVec::zeros(n);
        let mut g = BitVec::zeros(n);
        for &i in pos {
            p.set(i);
        }
        for &i in neg {
            g.set(i);
        }
        FeatureSet { pos: p, neg: g }
    }

    fn mc(n: usize) -> MonteCarlo {
        MonteCarlo {
            permutations: n,
            ..MonteCarlo::default()
        }
    }

    #[test]
    fn coincident_sparse_features_are_significant() {
        // 500 time steps, features at the same 5 isolated instants: under
        // rotation the overlap collapses, so the observed τ=1 is extreme.
        let n = 500;
        let points = [10usize, 100, 200, 300, 450];
        let a = fs(n, &points, &[]);
        let b = fs(n, &points, &[]);
        let obs = evaluate_features(&a, &b).score;
        assert_eq!(obs, 1.0);
        let p = significance_test(
            &a,
            &b,
            &[vec![]],
            n,
            obs,
            &mc(200),
            PermutationScheme::Paper,
            7,
        );
        assert!(p <= 0.05, "expected significance, got p = {p}");
    }

    #[test]
    fn dense_everywhere_features_are_not_significant() {
        // Features covering almost every step relate under any rotation:
        // the observed score is not extreme.
        let n = 200;
        let most: Vec<usize> = (0..n).filter(|i| i % 10 != 0).collect();
        let a = fs(n, &most, &[]);
        let b = fs(n, &most, &[]);
        let obs = evaluate_features(&a, &b).score;
        let p = significance_test(
            &a,
            &b,
            &[vec![]],
            n,
            obs,
            &mc(200),
            PermutationScheme::Paper,
            3,
        );
        assert!(p > 0.05, "dense overlap should not be significant: p = {p}");
    }

    #[test]
    fn spatial_scheme_uses_graph_shift() {
        // 3x3 spatial grid over 4 steps; features concentrated in one
        // corner region of both functions.
        let mut adj = vec![Vec::new(); 9];
        for y in 0..3usize {
            for x in 0..3usize {
                let i = y * 3 + x;
                if x + 1 < 3 {
                    adj[i].push((i + 1) as u32);
                    adj[i + 1].push(i as u32);
                }
                if y + 1 < 3 {
                    adj[i].push((i + 3) as u32);
                    adj[i + 3].push(i as u32);
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        let n = 9 * 4;
        let corner: Vec<usize> = (0..4).map(|z| z * 9).collect();
        let a = fs(n, &corner, &[]);
        let b = fs(n, &corner, &[]);
        let obs = evaluate_features(&a, &b).score;
        // Small domain: we only check the test runs and returns a valid p.
        for scheme in [PermutationScheme::Paper, PermutationScheme::SpatioTemporal] {
            let p = significance_test(&a, &b, &adj, 4, obs, &mc(100), scheme, 11);
            assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let n = 300;
        let pts = [5usize, 50, 150, 250];
        let a = fs(n, &pts, &[]);
        let b = fs(n, &pts, &[]);
        let obs = 1.0;
        let p1 = significance_test(
            &a,
            &b,
            &[vec![]],
            n,
            obs,
            &mc(100),
            PermutationScheme::Paper,
            42,
        );
        let p2 = significance_test(
            &a,
            &b,
            &[vec![]],
            n,
            obs,
            &mc(100),
            PermutationScheme::Paper,
            42,
        );
        assert_eq!(p1, p2);
    }

    #[test]
    fn zero_permutations_never_significant() {
        let a = fs(10, &[1], &[]);
        let b = fs(10, &[1], &[]);
        let p = significance_test(
            &a,
            &b,
            &[vec![]],
            10,
            1.0,
            &mc(0),
            PermutationScheme::Paper,
            0,
        );
        assert_eq!(p, 1.0);
    }
}

//! Hand-written PQL lexer: source text → spanned tokens.
//!
//! The token set is deliberately tiny: bare words (which may contain
//! hyphens, matching data-set names like `gas-prices` and resolution
//! names like `city-hour`), quoted strings with `\"`, `\\`, `\n`, `\t`
//! and `\r` escapes,
//! decimal numbers (optional sign, fraction and exponent), and the six
//! punctuators `, ( ) * >= =`. Whitespace separates tokens; `#` starts a
//! comment that runs to end of line. Keywords are *contextual* — the
//! lexer produces plain [`TokenKind::Word`]s and the parser decides which
//! words are keywords where, so `score` or `between` remain usable as
//! data-set names (quoted, for the four reserved words).

use super::error::{PqlError, PqlErrorKind, Span};

/// The kinds of token PQL distinguishes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare word: `[A-Za-z_][A-Za-z0-9_-]*`.
    Word(String),
    /// A quoted string literal, unescaped.
    Str(String),
    /// A numeric literal.
    Number(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

impl TokenKind {
    /// Human rendering used in "expected X, found Y" diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word(w) => format!("`{w}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Comma => "`,`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Eq => "`=`".into(),
        }
    }
}

/// A token plus the byte range it was lexed from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

/// True if `name` lexes back as a single bare [`TokenKind::Word`] — i.e.
/// it can be printed unquoted (reservedness is a separate, parser-level
/// concern; see [`super::printer`]).
pub fn is_bare_word(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Lexes `src` to completion. Spans are byte offsets into `src`.
pub fn lex(src: &str) -> Result<Vec<Token>, PqlError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b',' => {
                tokens.push(punct(TokenKind::Comma, i));
                i += 1;
            }
            b'(' => {
                tokens.push(punct(TokenKind::LParen, i));
                i += 1;
            }
            b')' => {
                tokens.push(punct(TokenKind::RParen, i));
                i += 1;
            }
            b'*' => {
                tokens.push(punct(TokenKind::Star, i));
                i += 1;
            }
            b'=' => {
                tokens.push(punct(TokenKind::Eq, i));
                i += 1;
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    return Err(PqlError::new(PqlErrorKind::LoneGt, Span::new(i, i + 1)));
                }
            }
            b'"' => {
                let (tok, next) = lex_string(src, i)?;
                tokens.push(tok);
                i = next;
            }
            b'-' | b'0'..=b'9' => {
                let (tok, next) = lex_number(src, i)?;
                tokens.push(tok);
                i = next;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Word(src[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                // Report the whole UTF-8 character, not its first byte.
                let c = src[i..].chars().next().expect("in-bounds char");
                return Err(PqlError::new(
                    PqlErrorKind::UnexpectedChar(c),
                    Span::new(i, i + c.len_utf8()),
                ));
            }
        }
    }
    Ok(tokens)
}

fn punct(kind: TokenKind, at: usize) -> Token {
    Token {
        kind,
        span: Span::new(at, at + 1),
    }
}

/// Lexes the quoted string starting at `start` (which holds `"`).
fn lex_string(src: &str, start: usize) -> Result<(Token, usize), PqlError> {
    let mut out = String::new();
    let mut iter = src[start + 1..].char_indices();
    while let Some((off, c)) = iter.next() {
        let pos = start + 1 + off;
        match c {
            '"' => {
                return Ok((
                    Token {
                        kind: TokenKind::Str(out),
                        span: Span::new(start, pos + 1),
                    },
                    pos + 1,
                ));
            }
            '\n' => break,
            '\\' => match iter.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((eoff, other)) => {
                    return Err(PqlError::new(
                        PqlErrorKind::InvalidEscape(other),
                        Span::new(pos, start + 1 + eoff + other.len_utf8()),
                    ));
                }
                None => break,
            },
            other => out.push(other),
        }
    }
    Err(PqlError::new(
        PqlErrorKind::UnterminatedString,
        Span::new(
            start,
            src.len()
                .min(start + 1 + src[start + 1..].find('\n').unwrap_or(src.len())),
        ),
    ))
}

/// Lexes the number starting at `start` (a digit or `-`).
fn lex_number(src: &str, start: usize) -> Result<(Token, usize), PqlError> {
    let bytes = src.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    let digits_from = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &src[start..i];
    let span = Span::new(start, i);
    if i == digits_from {
        // A lone `-` with no digits after it.
        return Err(PqlError::new(
            PqlErrorKind::InvalidNumber(text.to_string()),
            span,
        ));
    }
    match text.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok((
            Token {
                kind: TokenKind::Number(v),
                span,
            },
            i,
        )),
        _ => Err(PqlError::new(
            PqlErrorKind::InvalidNumber(text.to_string()),
            span,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_numbers_and_punctuation() {
        assert_eq!(
            kinds("between gas-prices and * where score >= 0.6"),
            vec![
                TokenKind::Word("between".into()),
                TokenKind::Word("gas-prices".into()),
                TokenKind::Word("and".into()),
                TokenKind::Star,
                TokenKind::Word("where".into()),
                TokenKind::Word("score".into()),
                TokenKind::Ge,
                TokenKind::Number(0.6),
            ]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = lex("taxi (1.5, -1.5)").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 4));
        assert_eq!(toks[1].span, Span::new(5, 6));
        assert_eq!(toks[2].span, Span::new(6, 9));
        assert_eq!(toks[4].span, Span::new(11, 15)); // -1.5
        assert_eq!(toks[5].span, Span::new(15, 16));
    }

    #[test]
    fn strings_unescape() {
        assert_eq!(
            kinds(r#""with space" "q\"uote" "back\\slash" """#),
            vec![
                TokenKind::Str("with space".into()),
                TokenKind::Str("q\"uote".into()),
                TokenKind::Str("back\\slash".into()),
                TokenKind::Str(String::new()),
            ]
        );
        assert_eq!(
            kinds(r#""line\nbreak\ttab\rcr""#),
            vec![TokenKind::Str("line\nbreak\ttab\rcr".into())]
        );
    }

    #[test]
    fn comments_run_to_end_of_line() {
        assert_eq!(
            kinds("alpha # everything here is ignored ( > !\nbeta"),
            vec![
                TokenKind::Word("alpha".into()),
                TokenKind::Word("beta".into()),
            ]
        );
        assert!(kinds("# only a comment").is_empty());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        assert_eq!(kinds(r##""a#b""##), vec![TokenKind::Str("a#b".into())]);
    }

    #[test]
    fn exponent_numbers() {
        assert_eq!(kinds("1e3"), vec![TokenKind::Number(1000.0)]);
        assert_eq!(kinds("-2.5E-2"), vec![TokenKind::Number(-0.025)]);
    }

    #[test]
    fn lone_gt_is_an_error() {
        let err = lex("score > 5").unwrap_err();
        assert_eq!(err.kind, PqlErrorKind::LoneGt);
        assert_eq!(err.span, Span::new(6, 7));
    }

    #[test]
    fn unterminated_string_spans_to_line_end() {
        let err = lex("\"oops\nnext").unwrap_err();
        assert_eq!(err.kind, PqlErrorKind::UnterminatedString);
        assert_eq!(err.span, Span::new(0, 5));
    }

    #[test]
    fn invalid_escape() {
        let err = lex(r#""a\qb""#).unwrap_err();
        assert_eq!(err.kind, PqlErrorKind::InvalidEscape('q'));
    }

    #[test]
    fn unexpected_char_reports_full_utf8_char() {
        let err = lex("between § and *").unwrap_err();
        assert_eq!(err.kind, PqlErrorKind::UnexpectedChar('§'));
        assert_eq!(err.span.end - err.span.start, '§'.len_utf8());
    }

    #[test]
    fn lone_minus_is_invalid_number() {
        let err = lex("thresholds t (-, 1)").unwrap_err();
        assert_eq!(err.kind, PqlErrorKind::InvalidNumber("-".into()));
    }

    #[test]
    fn bare_word_predicate() {
        assert!(is_bare_word("gas-prices"));
        assert!(is_bare_word("_x9"));
        assert!(!is_bare_word(""));
        assert!(!is_bare_word("9lives"));
        assert!(!is_bare_word("has space"));
        assert!(!is_bare_word("-lead"));
    }
}

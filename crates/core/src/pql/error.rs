//! Typed PQL errors with byte-span diagnostics.
//!
//! Every failure mode of the lexer and parser is a [`PqlErrorKind`]
//! variant carrying a [`Span`] — the half-open byte range of the offending
//! source text. [`PqlError::render`] turns an error plus its source into a
//! caret-underlined, line-numbered diagnostic; the full catalogue of
//! messages is documented in `docs/pql.md`.

use std::fmt;

/// A half-open byte range `start..end` into the PQL source text.
///
/// Spans produced by [`crate::pql::parse_batch`] are offsets into the
/// *whole* batch source, not into the individual line, so one rendered
/// diagnostic pinpoints the failing line of a multi-query file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first offending byte.
    pub start: usize,
    /// Byte offset one past the last offending byte (`>= start`).
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "inverted span {start}..{end}");
        Self { start, end }
    }

    /// An empty span at `pos` (used for end-of-input errors).
    pub fn at(pos: usize) -> Self {
        Self::new(pos, pos)
    }

    /// Returns this span shifted right by `offset` bytes (batch lines are
    /// lexed line-relative and re-based into whole-file coordinates).
    pub fn offset(self, offset: usize) -> Self {
        Self::new(self.start + offset, self.end + offset)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// What went wrong while lexing or parsing PQL.
///
/// Each variant corresponds to one entry in the error catalogue of
/// `docs/pql.md`; the associated data is the offending source fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PqlErrorKind {
    /// A byte that cannot start any token (e.g. `%`).
    UnexpectedChar(char),
    /// A string literal with no closing `"` before end of line/input.
    UnterminatedString,
    /// A `\x` escape other than `\"`, `\\`, `\n`, `\t` or `\r` inside a
    /// string literal.
    InvalidEscape(char),
    /// A numeric literal that does not parse as a finite number.
    InvalidNumber(String),
    /// A bare `>`: PQL's only comparison operator is `>=`.
    LoneGt,
    /// The parser needed `expected` but found the described token.
    UnexpectedToken {
        /// Human description of what the grammar allows here.
        expected: &'static str,
        /// Rendering of the token actually found.
        found: String,
    },
    /// The parser needed `expected` but the input ended.
    UnexpectedEnd {
        /// Human description of what the grammar allows here.
        expected: &'static str,
    },
    /// A reserved word (`between`, `and`, `where`, `in`) used as a bare
    /// data-set name; quote it (`"and"`) to use it literally.
    ReservedName(String),
    /// A predicate head the grammar does not know.
    UnknownPredicate(String),
    /// A single-occurrence predicate appeared twice.
    DuplicatePredicate(&'static str),
    /// `thresholds` given twice for the same data set (the evaluator
    /// applies the first match only, so the repeat would be dead).
    DuplicateThresholds(String),
    /// `class =` followed by something other than `salient` / `extreme`.
    UnknownClass(String),
    /// `scheme =` followed by something other than `paper` /
    /// `spatiotemporal`.
    UnknownScheme(String),
    /// A resolution that is not `<spatial>-<temporal>` with known halves.
    UnknownResolution(String),
    /// `permutations =` followed by a non-integer, negative, or
    /// out-of-range (≥ 2⁵³, where f64 loses exactness) number.
    ExpectedInteger(String),
    /// Well-formed query followed by extra tokens.
    TrailingInput,
}

impl fmt::Display for PqlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqlErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            PqlErrorKind::UnterminatedString => {
                write!(
                    f,
                    "unterminated string literal (strings may not span lines)"
                )
            }
            PqlErrorKind::InvalidEscape(c) => {
                write!(
                    f,
                    "invalid escape `\\{c}` (only `\\\"`, `\\\\`, `\\n`, `\\t` and `\\r` \
                     are recognised)"
                )
            }
            PqlErrorKind::InvalidNumber(s) => write!(f, "`{s}` is not a valid number"),
            PqlErrorKind::LoneGt => {
                write!(f, "`>` is not an operator; PQL comparisons use `>=`")
            }
            PqlErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            PqlErrorKind::UnexpectedEnd { expected } => {
                write!(f, "expected {expected}, found end of query")
            }
            PqlErrorKind::ReservedName(w) => {
                write!(
                    f,
                    "`{w}` is a reserved word; quote it (`\"{w}\"`) to use it as a data-set name"
                )
            }
            PqlErrorKind::UnknownPredicate(w) => {
                write!(
                    f,
                    "unknown predicate `{w}` (expected one of: score, strength, class, alpha, \
                     permutations, resolution, thresholds, scheme, significant, include)"
                )
            }
            PqlErrorKind::DuplicatePredicate(w) => {
                write!(f, "predicate `{w}` may appear at most once per query")
            }
            PqlErrorKind::DuplicateThresholds(d) => {
                write!(f, "`thresholds` already given for data set `{d}`")
            }
            PqlErrorKind::UnknownClass(w) => {
                write!(
                    f,
                    "unknown feature class `{w}` (expected `salient` or `extreme`)"
                )
            }
            PqlErrorKind::UnknownScheme(w) => {
                write!(
                    f,
                    "unknown permutation scheme `{w}` (expected `paper` or `spatiotemporal`)"
                )
            }
            PqlErrorKind::UnknownResolution(w) => {
                write!(
                    f,
                    "unknown resolution `{w}` (expected `<spatial>-<temporal>`, e.g. `city-hour`, \
                     with spatial in {{gps, zip, neighborhood, city}} and temporal in \
                     {{hour, day, week, month}})"
                )
            }
            PqlErrorKind::ExpectedInteger(s) => {
                write!(f, "`{s}` is not a non-negative integer (or is too large)")
            }
            PqlErrorKind::TrailingInput => {
                write!(f, "unexpected trailing input after a complete query")
            }
        }
    }
}

/// A PQL lex/parse failure: a [`PqlErrorKind`] anchored to a [`Span`].
///
/// `Display` is a one-line message with byte offsets; [`PqlError::render`]
/// produces the full caret diagnostic when the source text is at hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PqlError {
    /// The failure mode.
    pub kind: PqlErrorKind,
    /// Byte range of the offending source text.
    pub span: Span,
}

impl PqlError {
    /// Creates an error of `kind` at `span`.
    pub fn new(kind: PqlErrorKind, span: Span) -> Self {
        Self { kind, span }
    }

    /// Returns a copy with the span shifted right by `offset` bytes.
    pub fn offset(mut self, offset: usize) -> Self {
        self.span = self.span.offset(offset);
        self
    }

    /// Renders a line-numbered, caret-underlined diagnostic against the
    /// source text the error was produced from.
    ///
    /// ```
    /// use polygamy_core::pql::parse_query;
    /// let src = "between taxi and * where scor >= 0.5";
    /// let err = parse_query(src).unwrap_err();
    /// let text = err.render(src);
    /// assert!(text.contains("unknown predicate `scor`"));
    /// assert!(text.contains("^^^^"));
    /// ```
    pub fn render(&self, source: &str) -> String {
        // Tabs occupy terminal-dependent widths, which would misalign the
        // caret line; expand them to a fixed width in both the echoed line
        // and the column arithmetic (as rustc does).
        fn expand(s: &str) -> String {
            s.replace('\t', "    ")
        }
        let start = self.span.start.min(source.len());
        let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = source[line_start..]
            .find('\n')
            .map_or(source.len(), |i| line_start + i);
        let line_no = source[..line_start].matches('\n').count() + 1;
        let line = expand(&source[line_start..line_end]);
        let col = expand(&source[line_start..start]).chars().count();
        let underline_bytes = self.span.end.min(line_end).saturating_sub(start);
        let carets = expand(&source[start..start + underline_bytes])
            .chars()
            .count()
            .max(1);
        let gutter = line_no.to_string().len();
        format!(
            "error: {kind}\n{pad} --> line {line_no}, bytes {span}\n\
             {pad} |\n{line_no:>gutter$} | {line}\n{pad} | {indent}{carets}",
            kind = self.kind,
            span = self.span,
            pad = " ".repeat(gutter),
            indent = " ".repeat(col),
            carets = "^".repeat(carets),
        )
    }
}

impl fmt::Display for PqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PQL error at bytes {}: {}", self.span, self.kind)
    }
}

impl std::error::Error for PqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display_and_offset() {
        let s = Span::new(3, 7);
        assert_eq!(s.to_string(), "3..7");
        assert_eq!(s.offset(10), Span::new(13, 17));
        assert_eq!(Span::at(5), Span::new(5, 5));
    }

    #[test]
    fn render_points_at_the_right_line() {
        let src = "# comment\nbetween taxi and *\nbetween ! and *";
        let err = PqlError::new(PqlErrorKind::UnexpectedChar('!'), Span::new(37, 38));
        let text = err.render(src);
        assert!(text.contains("line 3"), "{text}");
        assert!(text.contains("between ! and *"), "{text}");
        let caret_line = text.lines().last().unwrap();
        assert_eq!(caret_line.matches('^').count(), 1, "{text}");
    }

    #[test]
    fn render_expands_tabs_for_caret_alignment() {
        let src = "between\ttaxi and ! x";
        let err = PqlError::new(PqlErrorKind::UnexpectedChar('!'), Span::new(17, 18));
        let text = err.render(src);
        let lines: Vec<&str> = text.lines().collect();
        let echoed = lines[lines.len() - 2];
        let caret_line = lines[lines.len() - 1];
        assert!(!echoed.contains('\t'), "{text}");
        let caret_col = caret_line.find('^').unwrap();
        let bang_col = echoed.find('!').unwrap();
        assert_eq!(caret_col, bang_col, "{text}");
    }

    #[test]
    fn render_handles_end_of_input() {
        let src = "between taxi";
        let err = PqlError::new(
            PqlErrorKind::UnexpectedEnd { expected: "`and`" },
            Span::at(src.len()),
        );
        let text = err.render(src);
        assert!(text.contains("end of query"), "{text}");
        assert!(text.ends_with('^'), "{text}");
    }
}

//! # PQL — the Polygamy Query Language
//!
//! A small textual language for the paper's query form (Section 5.3):
//! *find relationships between D1 and D2 satisfying clause*. PQL is the
//! stable, user-facing wire contract over [`RelationshipQuery`] /
//! [`Clause`](crate::query::Clause): anything a frontend can say in PQL
//! compiles to exactly the structs the executor runs, and anything the
//! structs can express prints back to canonical PQL. The language
//! reference (grammar, predicate semantics, defaults, error catalogue)
//! lives in `docs/pql.md`.
//!
//! ```
//! use polygamy_core::pql::{parse_query, to_pql};
//!
//! let q = parse_query(
//!     "between taxi, weather and * where score >= 0.6 and class = salient",
//! )
//! .unwrap();
//! assert_eq!(q.left.as_deref(), Some(&["taxi".to_string(), "weather".to_string()][..]));
//! // Printing is canonical: parse(print(q)) == q, and printing is idempotent.
//! assert_eq!(
//!     to_pql(&q),
//!     "between taxi, weather and * where score >= 0.6 and class = salient"
//! );
//! ```
//!
//! Three entry points:
//!
//! * [`parse_query`] — one query (newlines and `#` comments allowed);
//! * [`parse_batch`] — a batch file: one query per line, blank lines and
//!   `#` comment lines skipped, error spans indexed into the whole file;
//! * [`to_pql`] — the canonical pretty-printer.
//!
//! Errors are typed ([`PqlError`] = [`PqlErrorKind`] + byte [`Span`]) and
//! render to caret diagnostics via [`PqlError::render`].

mod error;
mod lexer;
mod parser;
mod printer;

pub use error::{PqlError, PqlErrorKind, Span};
pub use parser::{
    parse_query, parse_query_maybe_explain, parse_resolution, KEYWORDS, RESERVED_WORDS,
};
pub use printer::{resolution_name, to_pql};

use crate::query::RelationshipQuery;

/// Parses a PQL batch: one query per line.
///
/// Blank lines and lines holding only a `#` comment are skipped; a `#`
/// comment may also trail a query. Unlike [`parse_query`], a query must
/// fit on one line — that is what makes a batch file trivially
/// appendable and diffable. Error spans are byte offsets into the *whole*
/// batch source, so [`PqlError::render`] points at the failing line.
///
/// ```
/// use polygamy_core::pql::parse_batch;
///
/// let batch = "# morning traffic sweep\n\
///              between taxi and * where score >= 0.5\n\n\
///              between weather and gas-prices   # the running example\n";
/// let queries = parse_batch(batch).unwrap();
/// assert_eq!(queries.len(), 2);
/// ```
pub fn parse_batch(src: &str) -> Result<Vec<RelationshipQuery>, PqlError> {
    let mut queries = Vec::new();
    let mut offset = 0;
    for line in src.split('\n') {
        let tokens = lexer::lex(line).map_err(|e| e.offset(offset))?;
        if !tokens.is_empty() {
            let query = parser::parse_tokens(&tokens, line.len()).map_err(|e| e.offset(offset))?;
            queries.push(query);
        }
        offset += line.len() + 1;
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Clause;

    #[test]
    fn batch_skips_blanks_and_comments() {
        let src = "# header comment\n\nbetween a and b\n   \nbetween c and * # tail\n";
        let qs = parse_batch(src).unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0], RelationshipQuery::between(&["a"], &["b"]));
        assert_eq!(qs[1], RelationshipQuery::of("c"));
    }

    #[test]
    fn empty_batch_is_ok() {
        assert!(parse_batch("").unwrap().is_empty());
        assert!(parse_batch("# nothing here\n# at all").unwrap().is_empty());
    }

    #[test]
    fn batch_error_spans_index_the_whole_file() {
        let src = "between a and b\nbetween c and d where scor >= 1\n";
        let err = parse_batch(src).unwrap_err();
        assert_eq!(err.kind, PqlErrorKind::UnknownPredicate("scor".into()));
        assert_eq!(&src[err.span.start..err.span.end], "scor");
        assert!(err.render(src).contains("line 2"));
    }

    #[test]
    fn batch_queries_cannot_span_lines() {
        // `between a` alone on a line is an incomplete query.
        let err = parse_batch("between a\nand b\n").unwrap_err();
        assert!(matches!(err.kind, PqlErrorKind::UnexpectedEnd { .. }));
        assert_eq!(err.span, Span::at("between a".len()));
    }

    #[test]
    fn explain_prefix_is_stripped_and_flagged() {
        let (q, explain) = parse_query_maybe_explain("explain between a and b").unwrap();
        assert!(explain);
        assert_eq!(q, RelationshipQuery::between(&["a"], &["b"]));
        // The canonical rendering never contains `explain`: the prefix is
        // a frontend directive, invisible to cache keys and printers.
        assert_eq!(to_pql(&q), "between a and b");
        let (plain, flagged) = parse_query_maybe_explain("between a and b").unwrap();
        assert!(!flagged);
        assert_eq!(plain, q);
        // `explain` is not reserved — it still works as a data-set name.
        let (named, flagged) = parse_query_maybe_explain("between explain and *").unwrap();
        assert!(!flagged);
        assert_eq!(named, RelationshipQuery::of("explain"));
    }

    #[test]
    fn batch_lines_parse_clauses() {
        let qs = parse_batch("between a and b where permutations = 64\n").unwrap();
        assert_eq!(qs[0].clause, Clause::default().permutations(64));
    }
}

//! Canonical PQL pretty-printer: [`RelationshipQuery`] → source text.
//!
//! [`to_pql`] emits the *canonical form*: one line, clause fields printed
//! only when they differ from [`Clause::default`], predicates in a fixed
//! order (score, strength, class, alpha, permutations, resolution,
//! thresholds, scheme, significance), names quoted only when necessary.
//! The output always re-parses to a `RelationshipQuery` that compares
//! equal to the input (`parse ∘ print = id`, proven by proptest in
//! `tests/integration_pql.rs`), with the caveats listed under "Limits"
//! in `docs/pql.md`: non-finite numbers have no PQL literal,
//! `permutations` counts ≥ 2⁵³ exceed f64 exactness, and repeated
//! thresholds for one data set are rejected at parse time.

use super::lexer::is_bare_word;
use super::parser::RESERVED_WORDS;
use crate::query::{Clause, RelationshipQuery};
use crate::significance::PermutationScheme;
use polygamy_stdata::Resolution;
use polygamy_topology::FeatureClass;
use std::fmt::Write;

/// Prints a query in canonical PQL.
///
/// ```
/// use polygamy_core::pql::to_pql;
/// use polygamy_core::prelude::*;
///
/// let query = RelationshipQuery::between(&["taxi", "weather"], &["gas-prices"])
///     .with_clause(Clause::default().min_score(0.6).class(FeatureClass::Salient));
/// assert_eq!(
///     to_pql(&query),
///     "between taxi, weather and gas-prices where score >= 0.6 and class = salient"
/// );
/// ```
pub fn to_pql(query: &RelationshipQuery) -> String {
    let mut out = format!(
        "between {} and {}",
        collection(&query.left),
        collection(&query.right)
    );
    let preds = predicates(&query.clause);
    if !preds.is_empty() {
        out.push_str(" where ");
        out.push_str(&preds.join(" and "));
    }
    out
}

/// Prints a resolution as its PQL name (`city-hour`, `zip-day`, …).
pub fn resolution_name(r: Resolution) -> String {
    format!("{}-{}", r.spatial.label(), r.temporal.label())
}

fn collection(c: &Option<Vec<String>>) -> String {
    match c {
        None => "*".to_string(),
        // An explicitly empty collection (matches nothing) keeps its
        // parenthesised spelling so `*` stays unambiguous.
        Some(names) if names.is_empty() => "()".to_string(),
        Some(names) => names
            .iter()
            .map(|n| dataset(n))
            .collect::<Vec<_>>()
            .join(", "),
    }
}

/// Quotes a data-set name unless it lexes as one bare, non-reserved word.
fn dataset(name: &str) -> String {
    if is_bare_word(name) && !RESERVED_WORDS.contains(&name) {
        name.to_string()
    } else {
        // Newlines MUST be escaped (strings cannot span lines, and batch
        // files are line-oriented); tab/CR ride along for hygiene.
        let escaped = name
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
            .replace('\t', "\\t")
            .replace('\r', "\\r");
        format!("\"{escaped}\"")
    }
}

fn predicates(c: &Clause) -> Vec<String> {
    let d = Clause::default();
    let mut out = Vec::new();
    if c.min_score != d.min_score {
        out.push(format!("score >= {}", c.min_score));
    }
    if c.min_strength != d.min_strength {
        out.push(format!("strength >= {}", c.min_strength));
    }
    match c.class {
        None => {}
        Some(FeatureClass::Salient) => out.push("class = salient".to_string()),
        Some(FeatureClass::Extreme) => out.push("class = extreme".to_string()),
    }
    if c.alpha != d.alpha {
        out.push(format!("alpha = {}", c.alpha));
    }
    if c.permutations != d.permutations {
        out.push(format!("permutations = {}", c.permutations));
    }
    match &c.resolutions {
        None => {}
        Some(rs) if rs.len() == 1 => {
            out.push(format!("resolution = {}", resolution_name(rs[0])));
        }
        Some(rs) => {
            let names: Vec<String> = rs.iter().map(|&r| resolution_name(r)).collect();
            out.push(format!("resolution in ({})", names.join(", ")));
        }
    }
    for t in &c.thresholds {
        let mut p = String::new();
        write!(
            p,
            "thresholds {} ({}, {})",
            dataset(&t.dataset),
            t.theta_pos,
            t.theta_neg
        )
        .expect("writing to String cannot fail");
        out.push(p);
    }
    match c.scheme {
        None => {}
        Some(PermutationScheme::Paper) => out.push("scheme = paper".to_string()),
        Some(PermutationScheme::SpatioTemporal) => {
            out.push("scheme = spatiotemporal".to_string());
        }
    }
    if !c.significant_only {
        out.push("include insignificant".to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse_query;
    use super::*;
    use polygamy_stdata::{SpatialResolution, TemporalResolution};

    #[test]
    fn default_query_prints_bare() {
        assert_eq!(to_pql(&RelationshipQuery::all()), "between * and *");
        assert_eq!(to_pql(&RelationshipQuery::of("taxi")), "between taxi and *");
    }

    #[test]
    fn canonical_predicate_order_is_fixed() {
        let q = RelationshipQuery::all().with_clause(
            Clause::default()
                .include_insignificant()
                .permutations(77)
                .min_score(0.25),
        );
        assert_eq!(
            to_pql(&q),
            "between * and * where score >= 0.25 and permutations = 77 \
             and include insignificant"
        );
    }

    #[test]
    fn quoting_kicks_in_only_when_needed() {
        let q = RelationshipQuery::between(&["gas-prices", "with space", "and"], &["x"]);
        assert_eq!(
            to_pql(&q),
            r#"between gas-prices, "with space", "and" and x"#
        );
        let weird = RelationshipQuery::of(r#"q"uote\back"#);
        assert_eq!(to_pql(&weird), r#"between "q\"uote\\back" and *"#);
    }

    #[test]
    fn empty_collection_prints_parenthesised() {
        let q = RelationshipQuery {
            left: Some(vec![]),
            right: None,
            clause: Clause::default(),
        };
        assert_eq!(to_pql(&q), "between () and *");
    }

    #[test]
    fn resolutions_print_singular_and_list_forms() {
        let city_hour = Resolution::new(SpatialResolution::City, TemporalResolution::Hour);
        let zip_day = Resolution::new(SpatialResolution::Zip, TemporalResolution::Day);
        let one = RelationshipQuery::all().with_clause(Clause::default().at_resolution(city_hour));
        assert_eq!(to_pql(&one), "between * and * where resolution = city-hour");
        let two = RelationshipQuery::all().with_clause(
            Clause::default()
                .at_resolution(city_hour)
                .at_resolution(zip_day),
        );
        assert_eq!(
            to_pql(&two),
            "between * and * where resolution in (city-hour, zip-day)"
        );
    }

    #[test]
    fn print_parse_round_trips_a_kitchen_sink_query() {
        let q = RelationshipQuery::between(&["taxi", "weather"], &["gas-prices"]).with_clause(
            Clause::default()
                .min_score(0.6)
                .min_strength(0.4)
                .class(FeatureClass::Extreme)
                .alpha(0.01)
                .permutations(2000)
                .at_resolution(Resolution::new(
                    SpatialResolution::City,
                    TemporalResolution::Hour,
                ))
                .with_thresholds("taxi", 1.5, -1.5)
                .with_scheme(PermutationScheme::SpatioTemporal)
                .include_insignificant(),
        );
        let printed = to_pql(&q);
        let reparsed = parse_query(&printed).expect("canonical output parses");
        assert_eq!(reparsed, q);
        // Printing is idempotent: canonical text prints back to itself.
        assert_eq!(to_pql(&reparsed), printed);
    }
}

//! Recursive-descent PQL parser: tokens → [`RelationshipQuery`].
//!
//! Grammar (see `docs/pql.md` for the full EBNF and prose):
//!
//! ```text
//! query       = "between" collection "and" collection [ "where" predicates ]
//! collection  = "*" | "(" [ dataset { "," dataset } ] ")"
//!             | dataset { "," dataset }
//! dataset     = WORD | STRING          (reserved words must be quoted)
//! predicates  = predicate { "and" predicate }
//! predicate   = "score" ">=" NUMBER
//!             | "strength" ">=" NUMBER
//!             | "class" "=" ( "salient" | "extreme" )
//!             | "alpha" "=" NUMBER
//!             | "permutations" "=" INTEGER
//!             | "resolution" ( "=" resolution
//!                            | "in" "(" [ resolution { "," resolution } ] ")" )
//!             | "thresholds" dataset "(" NUMBER "," NUMBER ")"
//!             | "scheme" "=" ( "paper" | "spatiotemporal" )
//!             | "significant"
//!             | "include" "insignificant"
//! resolution  = WORD                   ("<spatial>-<temporal>", e.g. city-hour)
//! ```
//!
//! Keywords are contextual: only `between`, `and`, `where` and `in` are
//! reserved in data-set position (quote them to use them as names).
//! Single-occurrence predicates may appear at most once; `thresholds` may
//! repeat (once per data set, in order).

use super::error::{PqlError, PqlErrorKind, Span};
use super::lexer::{lex, Token, TokenKind};
use crate::query::{Clause, DatasetThresholds, RelationshipQuery};
use crate::significance::PermutationScheme;
use polygamy_stdata::{Resolution, SpatialResolution, TemporalResolution};
use polygamy_topology::FeatureClass;

/// Words that cannot appear bare in data-set position.
pub const RESERVED_WORDS: [&str; 4] = ["between", "and", "where", "in"];

/// Every keyword the grammar knows, reserved or contextual — the
/// parser's complete keyword inventory, in grammar order.
///
/// This is the **normative** list `docs/pql.md`'s EBNF is checked
/// against: the project linter (`polygamy-lint`, rule
/// `pql-keyword-drift`) diffs the grammar's quoted terminals against
/// this array in both directions, and a unit test below pins each entry
/// to a literal match arm in this file. Adding a keyword therefore
/// means touching the match arm, this inventory, and the spec together.
pub const KEYWORDS: [&str; 19] = [
    "between",
    "and",
    "where",
    "in",
    "score",
    "strength",
    "class",
    "salient",
    "extreme",
    "alpha",
    "permutations",
    "resolution",
    "thresholds",
    "scheme",
    "paper",
    "spatiotemporal",
    "significant",
    "include",
    "insignificant",
];

/// Parses one complete PQL query; trailing tokens are an error.
///
/// `#` comments and newlines are treated as whitespace, so a single query
/// may be split over several lines.
pub fn parse_query(src: &str) -> Result<RelationshipQuery, PqlError> {
    let tokens = lex(src)?;
    parse_tokens(&tokens, src.len())
}

/// Parses one PQL query that may carry a leading `explain` keyword —
/// the REPL's tracing prefix. Returns the parsed query and whether
/// `explain` was present.
///
/// `explain` is a *frontend* directive, not part of the query: it is
/// stripped before parsing, never reaches [`RelationshipQuery`], and so
/// can never leak into cache keys or the canonical [`super::to_pql`]
/// rendering. It is also not a reserved word — `between explain and *`
/// still names a data set called `explain`.
pub fn parse_query_maybe_explain(src: &str) -> Result<(RelationshipQuery, bool), PqlError> {
    let tokens = lex(src)?;
    if let Some(Token {
        kind: TokenKind::Word(w),
        ..
    }) = tokens.first()
    {
        if w == "explain" {
            return parse_tokens(&tokens[1..], src.len()).map(|q| (q, true));
        }
    }
    parse_tokens(&tokens, src.len()).map(|q| (q, false))
}

/// Parses a pre-lexed token stream to completion. `end` is the byte
/// position reported by end-of-input errors (the source length).
pub(super) fn parse_tokens(tokens: &[Token], end: usize) -> Result<RelationshipQuery, PqlError> {
    let mut p = Parser {
        tokens,
        pos: 0,
        end,
    };
    let query = p.query()?;
    if let Some(extra) = p.peek() {
        return Err(PqlError::new(PqlErrorKind::TrailingInput, extra.span));
    }
    Ok(query)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self, expected: &'static str) -> Result<&'a Token, PqlError> {
        match self.tokens.get(self.pos) {
            Some(t) => {
                self.pos += 1;
                Ok(t)
            }
            None => Err(self.eof(expected)),
        }
    }

    fn eof(&self, expected: &'static str) -> PqlError {
        PqlError::new(PqlErrorKind::UnexpectedEnd { expected }, Span::at(self.end))
    }

    fn unexpected(token: &Token, expected: &'static str) -> PqlError {
        PqlError::new(
            PqlErrorKind::UnexpectedToken {
                expected,
                found: token.kind.describe(),
            },
            token.span,
        )
    }

    /// Consumes the next token if it is the bare word `word`.
    fn eat_word(&mut self, word: &str) -> bool {
        if let Some(Token {
            kind: TokenKind::Word(w),
            ..
        }) = self.peek()
        {
            if w == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_word(&mut self, word: &'static str, expected: &'static str) -> Result<(), PqlError> {
        let t = self.next(expected)?;
        match &t.kind {
            TokenKind::Word(w) if w == word => Ok(()),
            _ => Err(Self::unexpected(t, expected)),
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, expected: &'static str) -> Result<(), PqlError> {
        let t = self.next(expected)?;
        if &t.kind == kind {
            Ok(())
        } else {
            Err(Self::unexpected(t, expected))
        }
    }

    fn number(&mut self, expected: &'static str) -> Result<f64, PqlError> {
        let t = self.next(expected)?;
        match t.kind {
            TokenKind::Number(v) => Ok(v),
            _ => Err(Self::unexpected(t, expected)),
        }
    }

    fn query(&mut self) -> Result<RelationshipQuery, PqlError> {
        self.expect_word("between", "`between`")?;
        let left = self.collection()?;
        self.expect_word("and", "`and`")?;
        let right = self.collection()?;
        let clause = if self.eat_word("where") {
            self.predicates()?
        } else {
            Clause::default()
        };
        Ok(RelationshipQuery {
            left,
            right,
            clause,
        })
    }

    /// `*` → `None`; otherwise a (possibly parenthesised, possibly empty
    /// when parenthesised) list of data-set names.
    fn collection(&mut self) -> Result<Option<Vec<String>>, PqlError> {
        const EXPECTED: &str = "a data-set collection (`*`, a name, or `(`)";
        match self.peek() {
            Some(Token {
                kind: TokenKind::Star,
                ..
            }) => {
                self.pos += 1;
                Ok(None)
            }
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                self.pos += 1;
                let mut names = Vec::new();
                if !matches!(self.peek().map(|t| &t.kind), Some(TokenKind::RParen)) {
                    loop {
                        names.push(self.dataset()?);
                        if !self.eat_comma() {
                            break;
                        }
                    }
                }
                self.expect_kind(&TokenKind::RParen, "`)` closing the collection")?;
                Ok(Some(names))
            }
            Some(_) => {
                let mut names = vec![self.dataset()?];
                while self.eat_comma() {
                    names.push(self.dataset()?);
                }
                Ok(Some(names))
            }
            None => Err(self.eof(EXPECTED)),
        }
    }

    fn eat_comma(&mut self) -> bool {
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Comma)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn dataset(&mut self) -> Result<String, PqlError> {
        const EXPECTED: &str = "a data-set name";
        let t = self.next(EXPECTED)?;
        match &t.kind {
            TokenKind::Word(w) => {
                if RESERVED_WORDS.contains(&w.as_str()) {
                    Err(PqlError::new(PqlErrorKind::ReservedName(w.clone()), t.span))
                } else {
                    Ok(w.clone())
                }
            }
            TokenKind::Str(s) => Ok(s.clone()),
            _ => Err(Self::unexpected(t, EXPECTED)),
        }
    }

    fn predicates(&mut self) -> Result<Clause, PqlError> {
        let mut clause = Clause::default();
        let mut seen = SeenPredicates::default();
        loop {
            self.predicate(&mut clause, &mut seen)?;
            if !self.eat_word("and") {
                break;
            }
        }
        Ok(clause)
    }

    fn predicate(
        &mut self,
        clause: &mut Clause,
        seen: &mut SeenPredicates,
    ) -> Result<(), PqlError> {
        const EXPECTED: &str = "a predicate";
        let t = self.next(EXPECTED)?;
        let TokenKind::Word(head) = &t.kind else {
            return Err(Self::unexpected(t, EXPECTED));
        };
        match head.as_str() {
            "score" => {
                seen.claim("score", seen_flags::SCORE, t.span)?;
                self.expect_kind(&TokenKind::Ge, "`>=` after `score`")?;
                clause.min_score = self.number("a number after `score >=`")?;
            }
            "strength" => {
                seen.claim("strength", seen_flags::STRENGTH, t.span)?;
                self.expect_kind(&TokenKind::Ge, "`>=` after `strength`")?;
                clause.min_strength = self.number("a number after `strength >=`")?;
            }
            "class" => {
                seen.claim("class", seen_flags::CLASS, t.span)?;
                self.expect_kind(&TokenKind::Eq, "`=` after `class`")?;
                let v = self.next("`salient` or `extreme`")?;
                clause.class = Some(match &v.kind {
                    TokenKind::Word(w) if w == "salient" => FeatureClass::Salient,
                    TokenKind::Word(w) if w == "extreme" => FeatureClass::Extreme,
                    TokenKind::Word(w) => {
                        return Err(PqlError::new(PqlErrorKind::UnknownClass(w.clone()), v.span));
                    }
                    _ => return Err(Self::unexpected(v, "`salient` or `extreme`")),
                });
            }
            "alpha" => {
                seen.claim("alpha", seen_flags::ALPHA, t.span)?;
                self.expect_kind(&TokenKind::Eq, "`=` after `alpha`")?;
                clause.alpha = self.number("a number after `alpha =`")?;
            }
            "permutations" => {
                seen.claim("permutations", seen_flags::PERMUTATIONS, t.span)?;
                self.expect_kind(&TokenKind::Eq, "`=` after `permutations`")?;
                let t = self.next("an integer after `permutations =`")?;
                let TokenKind::Number(v) = t.kind else {
                    return Err(Self::unexpected(t, "an integer after `permutations =`"));
                };
                // Numbers lex as f64, which is exact only below 2^53:
                // beyond that (or beyond usize on 32-bit targets) the
                // count would be silently rounded, so reject it instead.
                const MAX_EXACT: f64 = (1u64 << 53) as f64;
                if v < 0.0 || v.fract() != 0.0 || v >= MAX_EXACT || v > usize::MAX as f64 {
                    return Err(PqlError::new(
                        PqlErrorKind::ExpectedInteger(format!("{v}")),
                        t.span,
                    ));
                }
                clause.permutations = v as usize;
            }
            "resolution" => {
                seen.claim("resolution", seen_flags::RESOLUTION, t.span)?;
                let next = self.next("`=` or `in` after `resolution`")?;
                match &next.kind {
                    TokenKind::Eq => {
                        clause.resolutions = Some(vec![self.resolution()?]);
                    }
                    TokenKind::Word(w) if w == "in" => {
                        self.expect_kind(&TokenKind::LParen, "`(` after `resolution in`")?;
                        let mut rs = Vec::new();
                        if !matches!(self.peek().map(|t| &t.kind), Some(TokenKind::RParen)) {
                            loop {
                                rs.push(self.resolution()?);
                                if !self.eat_comma() {
                                    break;
                                }
                            }
                        }
                        self.expect_kind(&TokenKind::RParen, "`)` closing the resolution list")?;
                        clause.resolutions = Some(rs);
                    }
                    _ => return Err(Self::unexpected(next, "`=` or `in` after `resolution`")),
                }
            }
            "thresholds" => {
                let name_span = self
                    .peek()
                    .map_or_else(|| Span::at(self.end), |tok| tok.span);
                let dataset = self.dataset()?;
                // The relationship operator applies the *first* matching
                // thresholds entry; a repeat for the same data set would be
                // dead weight the user almost certainly meant as an edit.
                if clause.thresholds.iter().any(|t| t.dataset == dataset) {
                    return Err(PqlError::new(
                        PqlErrorKind::DuplicateThresholds(dataset),
                        name_span,
                    ));
                }
                self.expect_kind(&TokenKind::LParen, "`(` after the thresholds data set")?;
                let theta_pos = self.number("the super-level threshold θ⁺")?;
                self.expect_kind(&TokenKind::Comma, "`,` between the two thresholds")?;
                let theta_neg = self.number("the sub-level threshold θ⁻")?;
                self.expect_kind(&TokenKind::RParen, "`)` closing the thresholds")?;
                clause.thresholds.push(DatasetThresholds {
                    dataset,
                    theta_pos,
                    theta_neg,
                });
            }
            "scheme" => {
                seen.claim("scheme", seen_flags::SCHEME, t.span)?;
                self.expect_kind(&TokenKind::Eq, "`=` after `scheme`")?;
                let v = self.next("`paper` or `spatiotemporal`")?;
                clause.scheme = Some(match &v.kind {
                    TokenKind::Word(w) if w == "paper" => PermutationScheme::Paper,
                    TokenKind::Word(w) if w == "spatiotemporal" => {
                        PermutationScheme::SpatioTemporal
                    }
                    TokenKind::Word(w) => {
                        return Err(PqlError::new(
                            PqlErrorKind::UnknownScheme(w.clone()),
                            v.span,
                        ));
                    }
                    _ => return Err(Self::unexpected(v, "`paper` or `spatiotemporal`")),
                });
            }
            "significant" => {
                seen.claim("significant", seen_flags::SIGNIFICANCE, t.span)?;
                clause.significant_only = true;
            }
            "include" => {
                seen.claim("include insignificant", seen_flags::SIGNIFICANCE, t.span)?;
                self.expect_word("insignificant", "`insignificant` after `include`")?;
                clause.significant_only = false;
            }
            other => {
                return Err(PqlError::new(
                    PqlErrorKind::UnknownPredicate(other.to_string()),
                    t.span,
                ));
            }
        }
        Ok(())
    }

    /// Parses `<spatial>-<temporal>` (e.g. `city-hour`).
    fn resolution(&mut self) -> Result<Resolution, PqlError> {
        const EXPECTED: &str = "a resolution like `city-hour`";
        let t = self.next(EXPECTED)?;
        let TokenKind::Word(w) = &t.kind else {
            return Err(Self::unexpected(t, EXPECTED));
        };
        parse_resolution(w)
            .ok_or_else(|| PqlError::new(PqlErrorKind::UnknownResolution(w.clone()), t.span))
    }
}

/// Parses a `<spatial>-<temporal>` resolution name (`city-hour`,
/// `zip-day`, …); `None` if either half is unknown.
pub fn parse_resolution(name: &str) -> Option<Resolution> {
    let (s, t) = name.split_once('-')?;
    let spatial = match s {
        "gps" => SpatialResolution::Gps,
        "zip" => SpatialResolution::Zip,
        "neighborhood" => SpatialResolution::Neighborhood,
        "city" => SpatialResolution::City,
        _ => return None,
    };
    let temporal = match t {
        "hour" => TemporalResolution::Hour,
        "day" => TemporalResolution::Day,
        "week" => TemporalResolution::Week,
        "month" => TemporalResolution::Month,
        _ => return None,
    };
    Some(Resolution::new(spatial, temporal))
}

/// Tracks which single-occurrence predicates have been used, keyed by bit
/// index, so the second occurrence gets a [`PqlErrorKind::DuplicatePredicate`].
#[derive(Default)]
struct SeenPredicates {
    bits: u32,
}

/// Bit indices for [`SeenPredicates`]. `significant` and `include
/// insignificant` share one bit: they set the same field.
mod seen_flags {
    pub const SCORE: u32 = 0;
    pub const STRENGTH: u32 = 1;
    pub const CLASS: u32 = 2;
    pub const ALPHA: u32 = 3;
    pub const PERMUTATIONS: u32 = 4;
    pub const RESOLUTION: u32 = 5;
    pub const SCHEME: u32 = 6;
    pub const SIGNIFICANCE: u32 = 7;
}

impl SeenPredicates {
    fn claim(&mut self, name: &'static str, bit: u32, span: Span) -> Result<(), PqlError> {
        let mask = 1u32 << bit;
        if self.bits & mask != 0 {
            return Err(PqlError::new(PqlErrorKind::DuplicatePredicate(name), span));
        }
        self.bits |= mask;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> RelationshipQuery {
        parse_query(src).unwrap_or_else(|e| panic!("{}", e.render(src)))
    }

    fn err(src: &str) -> PqlError {
        parse_query(src).expect_err("should fail")
    }

    #[test]
    fn wildcard_both_sides_is_the_default_query() {
        assert_eq!(q("between * and *"), RelationshipQuery::all());
    }

    #[test]
    fn keyword_inventory_is_fresh() {
        // Every inventory entry must occur as a string literal somewhere
        // else in this file — the match arm or reserved-word list that
        // actually consumes it — so KEYWORDS cannot rot silently. (The
        // project linter re-checks this and diffs the inventory against
        // the docs/pql.md grammar.)
        let src = include_str!("parser.rs");
        for kw in KEYWORDS {
            let needle = format!("\"{kw}\"");
            assert!(
                src.matches(needle.as_str()).count() >= 2,
                "keyword `{kw}` appears only in the KEYWORDS inventory"
            );
        }
        for word in RESERVED_WORDS {
            assert!(
                KEYWORDS.contains(&word),
                "reserved word `{word}` missing from KEYWORDS"
            );
        }
    }

    #[test]
    fn collections_parse() {
        let parsed = q("between taxi, weather and *");
        assert_eq!(
            parsed.left,
            Some(vec!["taxi".to_string(), "weather".to_string()])
        );
        assert_eq!(parsed.right, None);
        assert_eq!(q("between (taxi) and (a, b)").right.unwrap().len(), 2);
        assert_eq!(q("between () and *").left, Some(vec![]));
    }

    #[test]
    fn quoted_names_and_reserved_words() {
        let parsed = q(r#"between "and", "with space" and taxi"#);
        assert_eq!(
            parsed.left,
            Some(vec!["and".to_string(), "with space".to_string()])
        );
        let e = err("between and and *");
        assert_eq!(e.kind, PqlErrorKind::ReservedName("and".into()));
        assert_eq!(e.span, Span::new(8, 11));
    }

    #[test]
    fn every_predicate_parses() {
        let parsed = q("between taxi and * where \
             score >= 0.6 and strength >= 0.4 and class = salient and alpha = 0.01 \
             and permutations = 2000 and resolution in (city-hour, zip-day) \
             and thresholds taxi (1.5, -1.5) and scheme = spatiotemporal \
             and include insignificant");
        let c = &parsed.clause;
        assert_eq!(c.min_score, 0.6);
        assert_eq!(c.min_strength, 0.4);
        assert_eq!(c.class, Some(FeatureClass::Salient));
        assert_eq!(c.alpha, 0.01);
        assert_eq!(c.permutations, 2000);
        assert!(!c.significant_only);
        assert_eq!(
            c.resolutions,
            Some(vec![
                Resolution::new(SpatialResolution::City, TemporalResolution::Hour),
                Resolution::new(SpatialResolution::Zip, TemporalResolution::Day),
            ])
        );
        assert_eq!(
            c.thresholds,
            vec![DatasetThresholds {
                dataset: "taxi".into(),
                theta_pos: 1.5,
                theta_neg: -1.5,
            }]
        );
        assert_eq!(c.scheme, Some(PermutationScheme::SpatioTemporal));
    }

    #[test]
    fn significant_is_explicit_default() {
        let parsed = q("between taxi and * where significant");
        assert!(parsed.clause.significant_only);
        assert_eq!(parsed.clause, Clause::default());
    }

    #[test]
    fn single_resolution_equals_form() {
        let parsed = q("between a and b where resolution = neighborhood-week");
        assert_eq!(
            parsed.clause.resolutions,
            Some(vec![Resolution::new(
                SpatialResolution::Neighborhood,
                TemporalResolution::Week
            )])
        );
        assert_eq!(
            q("between a and b where resolution in ()")
                .clause
                .resolutions,
            Some(vec![])
        );
    }

    #[test]
    fn repeated_thresholds_accumulate_in_order() {
        let parsed = q("between a and b where thresholds a (1, -1) and thresholds b (2, -2)");
        assert_eq!(parsed.clause.thresholds.len(), 2);
        assert_eq!(parsed.clause.thresholds[0].dataset, "a");
        assert_eq!(parsed.clause.thresholds[1].dataset, "b");
    }

    #[test]
    fn duplicate_thresholds_for_one_dataset_rejected() {
        // The evaluator applies the first match only, so a repeat would be
        // silently dead — reject it with a span on the repeated name.
        let src = "between a and b where thresholds a (1, -1) and thresholds a (9, -9)";
        let e = err(src);
        assert_eq!(e.kind, PqlErrorKind::DuplicateThresholds("a".into()));
        assert_eq!(&src[e.span.start..e.span.end], "a");
        assert_eq!(e.span.start, 58);
    }

    #[test]
    fn oversized_permutation_counts_rejected() {
        // 2^53 + 1 is not exactly representable in f64; accepting it would
        // silently store the wrong count.
        let e = err("between a and b where permutations = 9007199254740993");
        assert!(matches!(e.kind, PqlErrorKind::ExpectedInteger(_)));
        let e = err("between a and b where permutations = 18446744073709551616");
        assert!(matches!(e.kind, PqlErrorKind::ExpectedInteger(_)));
        // Realistic counts are unaffected.
        let parsed = q("between a and b where permutations = 1000000");
        assert_eq!(parsed.clause.permutations, 1_000_000);
    }

    #[test]
    fn multiline_query_with_comments() {
        let parsed = q("between taxi and *   # the pair\n  where score >= 0.5 # the filter");
        assert_eq!(parsed.clause.min_score, 0.5);
    }

    #[test]
    fn duplicate_predicates_rejected_with_span() {
        let src = "between a and b where score >= 0.1 and score >= 0.2";
        let e = err(src);
        assert_eq!(e.kind, PqlErrorKind::DuplicatePredicate("score"));
        assert_eq!(&src[e.span.start..e.span.end], "score");
        assert_eq!(e.span.start, 39);
        // `significant` and `include insignificant` contradict; both claim
        // the same slot.
        let e = err("between a and b where significant and include insignificant");
        assert_eq!(
            e.kind,
            PqlErrorKind::DuplicatePredicate("include insignificant")
        );
    }

    #[test]
    fn error_spans_are_exact() {
        let src = "between taxi and * where permutations = 12.5";
        let e = err(src);
        assert_eq!(e.kind, PqlErrorKind::ExpectedInteger("12.5".into()));
        assert_eq!(&src[e.span.start..e.span.end], "12.5");

        let src = "between taxi and * where class = bogus";
        let e = err(src);
        assert_eq!(e.kind, PqlErrorKind::UnknownClass("bogus".into()));
        assert_eq!(&src[e.span.start..e.span.end], "bogus");

        let src = "between taxi and * where resolution = city-minute";
        let e = err(src);
        assert_eq!(
            e.kind,
            PqlErrorKind::UnknownResolution("city-minute".into())
        );
        assert_eq!(&src[e.span.start..e.span.end], "city-minute");

        let src = "between taxi and * where scheme = fancy";
        let e = err(src);
        assert_eq!(e.kind, PqlErrorKind::UnknownScheme("fancy".into()));

        let src = "between taxi and * where speed >= 3";
        let e = err(src);
        assert_eq!(e.kind, PqlErrorKind::UnknownPredicate("speed".into()));
        assert_eq!(&src[e.span.start..e.span.end], "speed");
    }

    #[test]
    fn unexpected_end_points_past_the_source() {
        let src = "between taxi";
        let e = err(src);
        assert_eq!(e.kind, PqlErrorKind::UnexpectedEnd { expected: "`and`" });
        assert_eq!(e.span, Span::at(src.len()));
    }

    #[test]
    fn trailing_input_rejected() {
        let src = "between a and b extra";
        let e = err(src);
        assert_eq!(e.kind, PqlErrorKind::TrailingInput);
        assert_eq!(&src[e.span.start..e.span.end], "extra");
    }

    #[test]
    fn negative_permutations_rejected() {
        let e = err("between a and b where permutations = -5");
        assert_eq!(e.kind, PqlErrorKind::ExpectedInteger("-5".into()));
    }

    #[test]
    fn score_requires_ge_not_eq() {
        let e = err("between a and b where score = 0.5");
        assert!(matches!(e.kind, PqlErrorKind::UnexpectedToken { .. }));
    }
}

//! Framework-level errors.

use std::fmt;

/// Errors raised by the Data Polygamy framework.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The substrate rejected the data.
    Data(polygamy_stdata::Error),
    /// A data set name was not found in the index.
    UnknownDataset(String),
    /// A function reference was not found in the index.
    UnknownFunction(String),
    /// The index has not been built yet.
    IndexNotBuilt,
    /// An indexed function sits at a spatial resolution the geometry has no
    /// partition for (an index/geometry mismatch, e.g. a store file whose
    /// geometry was saved without the partition its segments require).
    MissingGeometry(polygamy_stdata::SpatialResolution),
    /// A query referenced the same data set on both sides.
    SelfRelationship(String),
    /// Index (de)serialisation failed.
    Serialization(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Data(e) => write!(f, "data error: {e}"),
            Error::UnknownDataset(name) => write!(f, "unknown data set: {name}"),
            Error::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            Error::IndexNotBuilt => write!(f, "index not built; call build_index() first"),
            Error::MissingGeometry(r) => write!(
                f,
                "no geometry partition for spatial resolution '{}' required by an indexed function",
                r.label()
            ),
            Error::SelfRelationship(name) => {
                write!(f, "relationship of {name} with itself is not defined")
            }
            Error::Serialization(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<polygamy_stdata::Error> for Error {
    fn from(e: polygamy_stdata::Error) -> Self {
        Error::Data(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::UnknownDataset("x".into()).to_string().contains("x"));
        assert!(Error::IndexNotBuilt.to_string().contains("build_index"));
        assert!(
            Error::MissingGeometry(polygamy_stdata::SpatialResolution::Zip)
                .to_string()
                .contains("zip")
        );
        let wrapped = Error::from(polygamy_stdata::Error::EmptyDomain);
        assert!(wrapped.to_string().contains("data error"));
    }
}

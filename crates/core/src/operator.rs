//! The relationship operator `relation(D1, D2)` (paper Section 4 + 5.3).
//!
//! For two data sets with `n` and `m` indexed functions there are `n × m`
//! candidate relationships per common resolution per feature class. The
//! operator evaluates all of them over the precomputed feature sets,
//! applies the clause pre-filter, and keeps only pairs whose score survives
//! the restricted Monte Carlo significance test.

use crate::framework::{CityGeometry, Config};
use crate::function::FunctionRef;
use crate::index::{FunctionEntry, PolygamyIndex};
use crate::query::Clause;
use crate::relationship::{evaluate_features, Relationship};
use crate::significance::significance_test;
use polygamy_mapreduce::par_map;
use polygamy_stats::permutation::MonteCarlo;
use polygamy_topology::{
    sub_level_set, super_level_set, DomainGraph, FeatureClass, FeatureSet, MergeTree,
};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Evaluates `relation(D1, D2)` over the index.
///
/// `d1`/`d2` are dataset indices; the returned relationships are those that
/// satisfy `clause` (and, unless the clause says otherwise, pass the
/// significance test).
pub fn relation(
    index: &PolygamyIndex,
    geometry: &CityGeometry,
    config: &Config,
    d1: usize,
    d2: usize,
    clause: &Clause,
) -> Vec<Relationship> {
    let left_entries: Vec<&FunctionEntry> = index.functions_of(d1).collect();
    let right_entries: Vec<&FunctionEntry> = index.functions_of(d2).collect();
    let mut units: Vec<(&FunctionEntry, &FunctionEntry)> = Vec::new();
    for &e1 in &left_entries {
        if !clause.admits_resolution(e1.resolution) {
            continue;
        }
        for &e2 in &right_entries {
            if e1.resolution == e2.resolution {
                units.push((e1, e2));
            }
        }
    }
    let results: Vec<Vec<Relationship>> = par_map(config.cluster, units, |(e1, e2)| {
        evaluate_pair(e1, e2, geometry, config, clause)
    });
    results.into_iter().flatten().collect()
}

/// Evaluates one function pair at one (shared) resolution for both feature
/// classes.
fn evaluate_pair(
    e1: &FunctionEntry,
    e2: &FunctionEntry,
    geometry: &CityGeometry,
    config: &Config,
    clause: &Clause,
) -> Vec<Relationship> {
    let Some((start, len)) = e1.overlap(e2) else {
        return Vec::new();
    };
    let (lo1, hi1) = e1.vertex_range(start, len);
    let (lo2, hi2) = e2.vertex_range(start, len);
    let adjacency = geometry
        .adjacency(e1.resolution.spatial)
        .expect("indexed resolutions have geometry");
    let mc = MonteCarlo {
        permutations: clause.permutations,
        alpha: clause.alpha,
        ..MonteCarlo::default()
    };
    let scheme = clause.scheme.unwrap_or(config.scheme);

    // User-defined thresholds replace the salient features of the named
    // data set's functions (and suppress the extreme class for them, since
    // a single threshold pair defines a single feature set).
    let override1 = custom_features(e1, clause);
    let override2 = custom_features(e2, clause);
    let overridden = override1.is_some() || override2.is_some();

    let mut out = Vec::new();
    for class in FeatureClass::ALL {
        if !clause.admits_class(class) {
            continue;
        }
        if overridden && class == FeatureClass::Extreme {
            continue;
        }
        let f1 = match &override1 {
            Some(fs) => fs.slice(lo1, hi1),
            None => e1.features.class(class).slice(lo1, hi1),
        };
        let f2 = match &override2 {
            Some(fs) => fs.slice(lo2, hi2),
            None => e2.features.class(class).slice(lo2, hi2),
        };
        let measures = evaluate_features(&f1, &f2);
        if measures.related_count() == 0 {
            continue;
        }
        // Clause pre-filter: skip the expensive significance test when the
        // clause already rejects the candidate (paper Section 6.1).
        if measures.score.abs() < clause.min_score || measures.strength < clause.min_strength {
            continue;
        }
        let seed = pair_seed(config.seed, e1, e2, class);
        let p = significance_test(&f1, &f2, adjacency, len, measures.score, &mc, scheme, seed);
        let significant = mc.is_significant(p);
        if clause.significant_only && !significant {
            continue;
        }
        out.push(Relationship {
            left: FunctionRef::from(&e1.spec),
            right: FunctionRef::from(&e2.spec),
            resolution: e1.resolution,
            class,
            measures,
            p_value: p,
            significant,
        });
    }
    out
}

/// Recomputes a function's features from user-supplied thresholds using the
/// merge-tree index (requires the stored field; silently keeps precomputed
/// features otherwise).
fn custom_features(entry: &FunctionEntry, clause: &Clause) -> Option<FeatureSet> {
    let t = clause
        .thresholds
        .iter()
        .find(|t| t.dataset == entry.spec.dataset)?;
    let field = entry.field.as_ref()?;
    let adjacency_len = entry.n_regions;
    // Rebuild the domain graph: City adjacency is trivially empty, other
    // resolutions use a chain-free lookup we reconstruct from the field.
    // The framework keeps geometry adjacency; this helper only needs the
    // graph shape, so rebuild from the stored field via the same builder.
    let spatial_adjacency: Vec<Vec<u32>> = if adjacency_len == 1 {
        vec![vec![]]
    } else {
        // Without geometry access here, approximate with no spatial edges:
        // thresholds are level-set cuts, and membership in a super-/sub-
        // level set is pointwise — connectivity only affects traversal
        // order, not the resulting set.
        vec![vec![]; adjacency_len]
    };
    let graph = DomainGraph::new(&spatial_adjacency, field.n_steps);
    let join = MergeTree::join(&graph, &field.values);
    let split = MergeTree::split(&graph, &field.values);
    Some(FeatureSet {
        pos: super_level_set(&graph, &field.values, &join, t.theta_pos),
        neg: sub_level_set(&graph, &field.values, &split, t.theta_neg),
    })
}

fn pair_seed(base: u64, e1: &FunctionEntry, e2: &FunctionEntry, class: FeatureClass) -> u64 {
    let mut h = DefaultHasher::new();
    base.hash(&mut h);
    e1.spec.dataset.hash(&mut h);
    e1.spec.name.hash(&mut h);
    e2.spec.dataset.hash(&mut h);
    e2.spec.name.hash(&mut h);
    e1.resolution.label().hash(&mut h);
    class.label().hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use crate::framework::{CityGeometry, Config, DataPolygamy};
    use crate::query::Clause;
    use polygamy_stdata::{
        AttributeMeta, DatasetBuilder, DatasetMeta, GeoPoint, SpatialResolution, TemporalResolution,
    };

    /// Two city-resolution hourly data sets with attribute spikes at the
    /// same instants (strong positive relationship) plus an unrelated flat
    /// attribute.
    fn corpus() -> DataPolygamy {
        let geometry = CityGeometry::city_only(0.0, 0.0, 10.0, 10.0);
        let mut dp = DataPolygamy::new(geometry, Config::fast_test());
        let spikes = [240usize, 700, 1200, 1800, 2100];
        for (name, offset) in [("alpha", 0.0), ("beta", 1000.0)] {
            let meta = DatasetMeta {
                name: name.into(),
                spatial_resolution: SpatialResolution::City,
                temporal_resolution: TemporalResolution::Hour,
                description: String::new(),
            };
            let mut b = DatasetBuilder::new(meta)
                .attribute(AttributeMeta::named("signal"))
                .attribute(AttributeMeta::named("flat"));
            for h in 0..2400i64 {
                let base = ((h % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
                let spike = if spikes.contains(&(h as usize)) {
                    40.0
                } else {
                    0.0
                };
                b.push(
                    GeoPoint::new(5.0, 5.0),
                    h * 3_600,
                    &[offset + base + spike, offset + 1.0 + (h % 2) as f64 * 0.001],
                )
                .unwrap();
            }
            dp.add_dataset(b.build().unwrap());
        }
        dp.build_index();
        dp
    }

    #[test]
    fn finds_planted_relationship() {
        let dp = corpus();
        let rels = dp.relation("alpha", "beta").unwrap();
        let signal = rels
            .iter()
            .find(|r| r.left.function == "avg(signal)" && r.right.function == "avg(signal)");
        let signal = signal.expect("planted signal~signal relationship missing");
        assert!(signal.score() > 0.8, "τ = {}", signal.score());
        assert!(signal.significant);
    }

    #[test]
    fn clause_prefilter_prunes() {
        let dp = corpus();
        let all = dp
            .query(
                &crate::query::RelationshipQuery::between(&["alpha"], &["beta"])
                    .with_clause(Clause::default().permutations(60).include_insignificant()),
            )
            .unwrap();
        let strict = dp
            .query(
                &crate::query::RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(
                    Clause::default()
                        .permutations(60)
                        .include_insignificant()
                        .min_score(0.8),
                ),
            )
            .unwrap();
        assert!(strict.len() <= all.len());
        assert!(strict.iter().all(|r| r.score().abs() >= 0.8));
    }

    #[test]
    fn resolution_filter() {
        let dp = corpus();
        let hourly =
            polygamy_stdata::Resolution::new(SpatialResolution::City, TemporalResolution::Hour);
        let rels = dp
            .query(
                &crate::query::RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(
                    Clause::default()
                        .permutations(60)
                        .include_insignificant()
                        .at_resolution(hourly),
                ),
            )
            .unwrap();
        assert!(!rels.is_empty());
        assert!(rels.iter().all(|r| r.resolution == hourly));
    }

    #[test]
    fn custom_thresholds_used() {
        let dp = corpus();
        // Absurdly high thresholds on alpha: no features -> no relationships.
        let rels = dp
            .query(
                &crate::query::RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(
                    Clause::default()
                        .permutations(40)
                        .include_insignificant()
                        .with_thresholds("alpha", 1e12, -1e12),
                ),
            )
            .unwrap();
        assert!(
            rels.is_empty(),
            "expected no features above 1e12, got {} rels",
            rels.len()
        );
    }
}

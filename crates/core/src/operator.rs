//! The relationship operator `relation(D1, D2)` (paper Section 4 + 5.3).
//!
//! For two data sets with `n` and `m` indexed functions there are `n × m`
//! candidate relationships per common resolution per feature class. The
//! operator expands all of them into `UnitTask`s — one (function pair,
//! class) evaluation each — which the flat executor (`core/src/executor.rs`)
//! schedules on a single shared worker pool. Each task applies the clause
//! pre-filter and keeps the candidate only if its score survives the
//! restricted Monte Carlo significance test.
//!
//! Monte Carlo seeds are derived per task with an explicit FNV-1a over a
//! fully framed byte stream, so significance verdicts are reproducible
//! across machines, toolchains and worker counts (`std`'s `DefaultHasher`
//! is documented to change between releases and must never seed a
//! hypothesis test).

use crate::cache::Fnv1a;
use crate::error::{Error, Result};
use crate::executor::task_chunk_size;
use crate::framework::{CityGeometry, Config};
use crate::function::FunctionRef;
use crate::index::{FunctionEntry, IndexView, PolygamyIndex};
use crate::query::Clause;
use crate::relationship::{evaluate_features, Relationship};
use crate::significance::significance_test;
use polygamy_mapreduce::run_chunked_tasks;
use polygamy_stats::permutation::MonteCarlo;
use polygamy_topology::{
    sub_level_set, super_level_set, DomainGraph, FeatureClass, FeatureSet, MergeTree,
};

/// One schedulable unit of relationship evaluation: a (left, right)
/// function pair at their shared resolution, for one feature class.
///
/// Tasks are self-contained — every input is resolved at expansion time on
/// the coordinating thread — so workers evaluate them in any order while
/// the executor assembles results in canonical task order.
#[derive(Clone, Copy)]
pub(crate) struct UnitTask<'a> {
    /// Left function entry.
    pub(crate) e1: &'a FunctionEntry,
    /// Right function entry (same resolution as `e1`).
    pub(crate) e2: &'a FunctionEntry,
    /// Feature class this task evaluates.
    pub(crate) class: FeatureClass,
    /// The query clause (pre-filters, permutation setup, thresholds).
    pub(crate) clause: &'a Clause,
    /// Region adjacency of the shared spatial resolution.
    pub(crate) adjacency: &'a [Vec<u32>],
}

/// Expands `relation(d1, d2)` under `clause` into unit tasks, appended to
/// `out` in canonical order: left entries in index order, right entries in
/// index order, classes in [`FeatureClass::ALL`] order.
///
/// Geometry is validated here, on the coordinating thread: an indexed
/// resolution with no geometry partition is a typed
/// [`Error::MissingGeometry`], never a worker panic.
pub(crate) fn expand_pair_tasks<'a>(
    index: &IndexView<'a>,
    geometry: &'a CityGeometry,
    d1: usize,
    d2: usize,
    clause: &'a Clause,
    out: &mut Vec<UnitTask<'a>>,
) -> Result<()> {
    for e1 in index.functions_of(d1) {
        if !clause.admits_resolution(e1.resolution) {
            continue;
        }
        for e2 in index.functions_of(d2) {
            if e1.resolution != e2.resolution || e1.overlap(e2).is_none() {
                continue;
            }
            let adjacency = geometry
                .adjacency(e1.resolution.spatial)
                .ok_or(Error::MissingGeometry(e1.resolution.spatial))?;
            // User-defined thresholds replace the salient features of the
            // named data set's functions and suppress the extreme class for
            // the pair (a single threshold pair defines a single feature
            // set).
            let overridden =
                has_threshold_override(e1, clause) || has_threshold_override(e2, clause);
            for class in FeatureClass::ALL {
                if !clause.admits_class(class) {
                    continue;
                }
                if overridden && class == FeatureClass::Extreme {
                    continue;
                }
                out.push(UnitTask {
                    e1,
                    e2,
                    class,
                    clause,
                    adjacency,
                });
            }
        }
    }
    Ok(())
}

/// Evaluates `relation(D1, D2)` over the index on one worker pool.
///
/// `d1`/`d2` are dataset indices; the returned relationships are those that
/// satisfy `clause` (and, unless the clause says otherwise, pass the
/// significance test). This is the single-pair convenience entry point —
/// query evaluation goes through the flat executor, which schedules many
/// pairs on one pool.
pub fn relation(
    index: &PolygamyIndex,
    geometry: &CityGeometry,
    config: &Config,
    d1: usize,
    d2: usize,
    clause: &Clause,
) -> Result<Vec<Relationship>> {
    let mut tasks = Vec::new();
    expand_pair_tasks(
        &IndexView::full(index),
        geometry,
        d1,
        d2,
        clause,
        &mut tasks,
    )?;
    let workers = config.cluster.workers();
    let results = run_chunked_tasks(
        workers,
        tasks.len(),
        task_chunk_size(tasks.len(), workers),
        |i| evaluate_unit(&tasks[i], config),
    );
    Ok(results.into_iter().flatten().collect())
}

/// Evaluates one unit task. Pure: the result depends only on the task and
/// `config`, never on scheduling, which is what makes the flat executor's
/// output worker-count-independent.
pub(crate) fn evaluate_unit(task: &UnitTask<'_>, config: &Config) -> Option<Relationship> {
    let UnitTask {
        e1,
        e2,
        class,
        clause,
        adjacency,
    } = *task;
    let (start, len) = e1.overlap(e2)?;
    let (lo1, hi1) = e1.vertex_range(start, len);
    let (lo2, hi2) = e2.vertex_range(start, len);
    let mc = MonteCarlo {
        permutations: clause.permutations,
        alpha: clause.alpha,
        ..MonteCarlo::default()
    };
    let scheme = clause.scheme.unwrap_or(config.scheme);
    let f1 = match custom_features(e1, clause) {
        Some(fs) => fs.slice(lo1, hi1),
        None => e1.features.class(class).slice(lo1, hi1),
    };
    let f2 = match custom_features(e2, clause) {
        Some(fs) => fs.slice(lo2, hi2),
        None => e2.features.class(class).slice(lo2, hi2),
    };
    let measures = evaluate_features(&f1, &f2);
    if measures.related_count() == 0 {
        return None;
    }
    // Clause pre-filter: skip the expensive significance test when the
    // clause already rejects the candidate (paper Section 6.1).
    if measures.score.abs() < clause.min_score || measures.strength < clause.min_strength {
        return None;
    }
    let seed = pair_seed(config.seed, e1, e2, class);
    let p = significance_test(&f1, &f2, adjacency, len, measures.score, &mc, scheme, seed);
    let significant = mc.is_significant(p);
    if clause.significant_only && !significant {
        return None;
    }
    Some(Relationship {
        left: FunctionRef::from(&e1.spec),
        right: FunctionRef::from(&e2.spec),
        resolution: e1.resolution,
        class,
        measures,
        p_value: p,
        significant,
    })
}

/// True when `clause` carries user thresholds that will replace this
/// entry's precomputed features (requires the stored field).
fn has_threshold_override(entry: &FunctionEntry, clause: &Clause) -> bool {
    entry.field.is_some()
        && clause
            .thresholds
            .iter()
            .any(|t| t.dataset == entry.spec.dataset)
}

/// Recomputes a function's features from user-supplied thresholds using the
/// merge-tree index (requires the stored field; silently keeps precomputed
/// features otherwise).
fn custom_features(entry: &FunctionEntry, clause: &Clause) -> Option<FeatureSet> {
    let t = clause
        .thresholds
        .iter()
        .find(|t| t.dataset == entry.spec.dataset)?;
    let field = entry.field.as_ref()?;
    let adjacency_len = entry.n_regions;
    // Rebuild the domain graph: City adjacency is trivially empty, other
    // resolutions use a chain-free lookup we reconstruct from the field.
    // The framework keeps geometry adjacency; this helper only needs the
    // graph shape, so rebuild from the stored field via the same builder.
    let spatial_adjacency: Vec<Vec<u32>> = if adjacency_len == 1 {
        vec![vec![]]
    } else {
        // Without geometry access here, approximate with no spatial edges:
        // thresholds are level-set cuts, and membership in a super-/sub-
        // level set is pointwise — connectivity only affects traversal
        // order, not the resulting set.
        vec![vec![]; adjacency_len]
    };
    let graph = DomainGraph::new(&spatial_adjacency, field.n_steps);
    let join = MergeTree::join(&graph, &field.values);
    let split = MergeTree::split(&graph, &field.values);
    Some(FeatureSet {
        pos: super_level_set(&graph, &field.values, &join, t.theta_pos),
        neg: sub_level_set(&graph, &field.values, &split, t.theta_neg),
    })
}

/// Derives the Monte Carlo seed for one (function pair, class) unit.
///
/// Seeds decide which permutations the significance test draws, so they
/// must be *stable*: the same query must reach the same verdict on every
/// machine, toolchain and worker count. The derivation is an explicit
/// FNV-1a over a fully framed byte stream (length-prefixed strings, stable
/// resolution wire codes) — the same scheme `Clause::cache_key` uses — and
/// is pinned by the `seed_format_pinned` regression test.
fn pair_seed(base: u64, e1: &FunctionEntry, e2: &FunctionEntry, class: FeatureClass) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(base);
    h.write_str(&e1.spec.dataset);
    h.write_str(&e1.spec.name);
    h.write_str(&e2.spec.dataset);
    h.write_str(&e2.spec.name);
    h.write_u8(e1.resolution.spatial.code());
    h.write_u8(e1.resolution.temporal.code());
    h.write_u8(match class {
        FeatureClass::Salient => 1,
        FeatureClass::Extreme => 2,
    });
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{CityGeometry, Config, DataPolygamy};
    use crate::function::FunctionSpec;
    use crate::query::Clause;
    use polygamy_stdata::{
        AttributeMeta, DatasetBuilder, DatasetMeta, GeoPoint, Resolution, SpatialResolution,
        TemporalResolution,
    };
    use polygamy_topology::{FeatureSets, SeasonalThresholds, Thresholds};

    /// Two city-resolution hourly data sets with attribute spikes at the
    /// same instants (strong positive relationship) plus an unrelated flat
    /// attribute.
    fn corpus() -> DataPolygamy {
        let geometry = CityGeometry::city_only(0.0, 0.0, 10.0, 10.0);
        let mut dp = DataPolygamy::new(geometry, Config::fast_test());
        let spikes = [240usize, 700, 1200, 1800, 2100];
        for (name, offset) in [("alpha", 0.0), ("beta", 1000.0)] {
            let meta = DatasetMeta {
                name: name.into(),
                spatial_resolution: SpatialResolution::City,
                temporal_resolution: TemporalResolution::Hour,
                description: String::new(),
            };
            let mut b = DatasetBuilder::new(meta)
                .attribute(AttributeMeta::named("signal"))
                .attribute(AttributeMeta::named("flat"));
            for h in 0..2400i64 {
                let base = ((h % 24) as f64 / 24.0 * std::f64::consts::TAU).sin();
                let spike = if spikes.contains(&(h as usize)) {
                    40.0
                } else {
                    0.0
                };
                b.push(
                    GeoPoint::new(5.0, 5.0),
                    h * 3_600,
                    &[offset + base + spike, offset + 1.0 + (h % 2) as f64 * 0.001],
                )
                .unwrap();
            }
            dp.add_dataset(b.build().unwrap());
        }
        dp.build_index();
        dp
    }

    #[test]
    fn finds_planted_relationship() {
        let dp = corpus();
        let rels = dp.relation("alpha", "beta").unwrap();
        let signal = rels
            .iter()
            .find(|r| r.left.function == "avg(signal)" && r.right.function == "avg(signal)");
        let signal = signal.expect("planted signal~signal relationship missing");
        assert!(signal.score() > 0.8, "τ = {}", signal.score());
        assert!(signal.significant);
    }

    #[test]
    fn clause_prefilter_prunes() {
        let dp = corpus();
        let all = dp
            .query(
                &crate::query::RelationshipQuery::between(&["alpha"], &["beta"])
                    .with_clause(Clause::default().permutations(60).include_insignificant()),
            )
            .unwrap();
        let strict = dp
            .query(
                &crate::query::RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(
                    Clause::default()
                        .permutations(60)
                        .include_insignificant()
                        .min_score(0.8),
                ),
            )
            .unwrap();
        assert!(strict.len() <= all.len());
        assert!(strict.iter().all(|r| r.score().abs() >= 0.8));
    }

    #[test]
    fn resolution_filter() {
        let dp = corpus();
        let hourly =
            polygamy_stdata::Resolution::new(SpatialResolution::City, TemporalResolution::Hour);
        let rels = dp
            .query(
                &crate::query::RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(
                    Clause::default()
                        .permutations(60)
                        .include_insignificant()
                        .at_resolution(hourly),
                ),
            )
            .unwrap();
        assert!(!rels.is_empty());
        assert!(rels.iter().all(|r| r.resolution == hourly));
    }

    #[test]
    fn custom_thresholds_used() {
        let dp = corpus();
        // Absurdly high thresholds on alpha: no features -> no relationships.
        let rels = dp
            .query(
                &crate::query::RelationshipQuery::between(&["alpha"], &["beta"]).with_clause(
                    Clause::default()
                        .permutations(40)
                        .include_insignificant()
                        .with_thresholds("alpha", 1e12, -1e12),
                ),
            )
            .unwrap();
        assert!(
            rels.is_empty(),
            "expected no features above 1e12, got {} rels",
            rels.len()
        );
    }

    fn seed_entry(dataset: &str, function: &str) -> FunctionEntry {
        let steps = 4;
        let mut spec = FunctionSpec::density(dataset);
        spec.name = function.to_string();
        FunctionEntry {
            spec,
            dataset_index: 0,
            resolution: Resolution::new(SpatialResolution::City, TemporalResolution::Hour),
            n_regions: 1,
            start_bucket: 0,
            n_steps: steps,
            features: FeatureSets {
                salient: FeatureSet::empty(steps),
                extreme: FeatureSet::empty(steps),
            },
            thresholds: SeasonalThresholds {
                interval_of_step: vec![0; steps],
                interval_ids: vec![0],
                per_interval: vec![Thresholds::none()],
            },
            field: None,
            tree_nodes: 0,
        }
    }

    #[test]
    fn seed_format_pinned() {
        // Permutation seeds feed published significance verdicts, so the
        // derivation is pinned the same way `Clause::cache_key` is: if this
        // assertion fires, the seed scheme changed and previously reported
        // p-values are no longer reproducible — that is a breaking change
        // and must be called out, not slipped in.
        let taxi = seed_entry("taxi", "density");
        let wind = seed_entry("weather", "avg(wind)");
        assert_eq!(
            pair_seed(0xDA7A_9A17, &taxi, &wind, FeatureClass::Salient),
            0xebdc_d204_d13e_7ce2
        );
        assert_eq!(
            pair_seed(0xDA7A_9A17, &taxi, &wind, FeatureClass::Extreme),
            0xebdc_d104_d13e_7b2f
        );
        assert_eq!(
            pair_seed(7, &taxi, &wind, FeatureClass::Salient),
            0xb197_9dce_0287_7080
        );
    }

    #[test]
    fn seeds_distinguish_units() {
        let taxi = seed_entry("taxi", "density");
        let wind = seed_entry("weather", "avg(wind)");
        let base = 1;
        let s = pair_seed(base, &taxi, &wind, FeatureClass::Salient);
        // Class, orientation, base seed and resolution all change the seed.
        assert_ne!(s, pair_seed(base, &taxi, &wind, FeatureClass::Extreme));
        assert_ne!(s, pair_seed(base, &wind, &taxi, FeatureClass::Salient));
        assert_ne!(s, pair_seed(base + 1, &taxi, &wind, FeatureClass::Salient));
        let mut daily = seed_entry("taxi", "density");
        daily.resolution = Resolution::new(SpatialResolution::City, TemporalResolution::Day);
        assert_ne!(s, pair_seed(base, &daily, &wind, FeatureClass::Salient));
    }
}

//! The end-to-end Data Polygamy framework (paper Section 5).
//!
//! [`DataPolygamy`] owns the city geometry, the raw data sets, the built
//! index and a query cache. Indexing runs the scalar-function and
//! feature-identification jobs per data set; queries run the relationship
//! operator over data set pairs with result caching.

use crate::error::{Error, Result};
use crate::index::{DatasetEntry, PolygamyIndex};
use crate::operator::relation;
use crate::pipeline::{compute_scalar_functions, identify_features};
use crate::query::RelationshipQuery;
use crate::relationship::Relationship;
use crate::significance::PermutationScheme;
use parking_lot::Mutex;
use polygamy_mapreduce::Cluster;
use polygamy_stats::permutation::MonteCarlo;
use polygamy_stdata::{Dataset, SpatialPartition, SpatialResolution};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The polygon partitions of the city at each evaluable spatial resolution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityGeometry {
    /// Zip-code partition (optional).
    pub zip: Option<SpatialPartition>,
    /// Neighborhood partition (optional).
    pub neighborhood: Option<SpatialPartition>,
    /// The whole-city partition (always present; single region).
    pub city: SpatialPartition,
}

impl CityGeometry {
    /// Geometry with only the city-scale region (1-D functions only).
    pub fn city_only(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self {
            zip: None,
            neighborhood: None,
            city: SpatialPartition::city(x0, y0, x1, y1),
        }
    }

    /// Partition for a spatial resolution (None for GPS — raw coordinates
    /// are never evaluated directly).
    pub fn partition(&self, r: SpatialResolution) -> Option<&SpatialPartition> {
        match r {
            SpatialResolution::Gps => None,
            SpatialResolution::Zip => self.zip.as_ref(),
            SpatialResolution::Neighborhood => self.neighborhood.as_ref(),
            SpatialResolution::City => Some(&self.city),
        }
    }

    /// Region adjacency for a spatial resolution.
    pub fn adjacency(&self, r: SpatialResolution) -> Option<&[Vec<u32>]> {
        self.partition(r).map(|p| p.adjacency.as_slice())
    }
}

/// Framework configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Execution environment for the parallel jobs.
    pub cluster: Cluster,
    /// Monte Carlo defaults (clauses can override count/alpha per query).
    pub monte_carlo: MonteCarlo,
    /// Restricted permutation family.
    pub scheme: PermutationScheme,
    /// Base RNG seed (per-pair seeds derive deterministically from it).
    pub seed: u64,
    /// Keep scalar fields in the index (needed for custom-threshold
    /// clauses and the robustness/baseline experiments).
    pub keep_fields: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cluster: Cluster::host(),
            monte_carlo: MonteCarlo::default(),
            scheme: PermutationScheme::Paper,
            seed: 0xDA7A_9A17,
            keep_fields: true,
        }
    }
}

impl Config {
    /// A configuration for fast deterministic tests: 2 workers, 80
    /// permutations.
    pub fn fast_test() -> Self {
        Self {
            cluster: Cluster::local(2),
            monte_carlo: MonteCarlo {
                permutations: 80,
                ..MonteCarlo::default()
            },
            ..Self::default()
        }
    }
}

/// Timing breakdown of one data set's indexing (Figure 8's quantities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetBuildStats {
    /// Data set name.
    pub name: String,
    /// Seconds in the scalar-function-computation job.
    pub scalar_secs: f64,
    /// Seconds in the feature-identification job.
    pub feature_secs: f64,
    /// (function, resolution) entries produced.
    pub n_functions: usize,
}

/// Report returned by [`DataPolygamy::build_index`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IndexBuildReport {
    /// Per-data-set stats, in indexing order.
    pub per_dataset: Vec<DatasetBuildStats>,
    /// Total wall seconds.
    pub total_secs: f64,
}

/// Query-result cache keyed by (dataset pair, clause fingerprint).
type QueryCache = Mutex<HashMap<(usize, usize, u64), Arc<Vec<Relationship>>>>;

/// The framework facade.
pub struct DataPolygamy {
    geometry: CityGeometry,
    config: Config,
    datasets: Vec<Dataset>,
    index: Option<PolygamyIndex>,
    cache: QueryCache,
}

impl DataPolygamy {
    /// Creates an empty framework over a city geometry.
    pub fn new(geometry: CityGeometry, config: Config) -> Self {
        Self {
            geometry,
            config,
            datasets: Vec::new(),
            index: None,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Registers a data set (invalidates any built index).
    pub fn add_dataset(&mut self, dataset: Dataset) -> &mut Self {
        self.datasets.push(dataset);
        self.index = None;
        self.cache.lock().clear();
        self
    }

    /// Names of registered data sets, in insertion order.
    pub fn dataset_names(&self) -> Vec<&str> {
        self.datasets.iter().map(|d| d.meta.name.as_str()).collect()
    }

    /// Immutable access to a registered raw data set.
    pub fn dataset(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.meta.name == name)
    }

    /// The city geometry.
    pub fn geometry(&self) -> &CityGeometry {
        &self.geometry
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Runs the two indexing jobs over every registered data set.
    pub fn build_index(&mut self) -> IndexBuildReport {
        let total_start = Instant::now();
        let mut index = PolygamyIndex::default();
        let mut report = IndexBuildReport::default();
        for (di, dataset) in self.datasets.iter().enumerate() {
            let t0 = Instant::now();
            let fields = compute_scalar_functions(self.config.cluster, &self.geometry, dataset);
            let scalar_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let entries = identify_features(
                self.config.cluster,
                &self.geometry,
                di,
                fields,
                self.config.keep_fields,
            );
            let feature_secs = t1.elapsed().as_secs_f64();
            let n_specs = crate::function::FunctionSpec::enumerate(dataset).len();
            report.per_dataset.push(DatasetBuildStats {
                name: dataset.meta.name.clone(),
                scalar_secs,
                feature_secs,
                n_functions: entries.len(),
            });
            index.datasets.push(DatasetEntry {
                meta: dataset.meta.clone(),
                n_records: dataset.len(),
                raw_bytes: dataset.approx_bytes(),
                n_specs,
            });
            index.functions.extend(entries);
        }
        report.total_secs = total_start.elapsed().as_secs_f64();
        self.index = Some(index);
        self.cache.lock().clear();
        report
    }

    /// The built index.
    pub fn index(&self) -> Result<&PolygamyIndex> {
        self.index.as_ref().ok_or(Error::IndexNotBuilt)
    }

    /// `relation(D1, D2)` with the default clause.
    pub fn relation(&self, d1: &str, d2: &str) -> Result<Vec<Relationship>> {
        self.query(&RelationshipQuery::between(&[d1], &[d2]))
    }

    /// Evaluates a relationship query.
    ///
    /// Pairs are deduplicated (the operator is symmetric up to swapping
    /// left/right); per-pair results are cached keyed by the clause.
    pub fn query(&self, query: &RelationshipQuery) -> Result<Vec<Relationship>> {
        let index = self.index()?;
        let resolve = |names: &Option<Vec<String>>| -> Result<Vec<usize>> {
            match names {
                None => Ok((0..index.datasets.len()).collect()),
                Some(list) => list.iter().map(|n| index.dataset_index(n)).collect(),
            }
        };
        let left = resolve(&query.left)?;
        let right = resolve(&query.right)?;
        let clause_key = query.clause.cache_key();

        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for &a in &left {
            for &b in &right {
                if a == b {
                    continue;
                }
                // Canonicalise so (a, b) and (b, a) share cache entries;
                // results are reported with the canonical orientation.
                let pair = (a.min(b), a.max(b));
                if !pairs.contains(&pair) {
                    pairs.push(pair);
                }
            }
        }

        let mut out = Vec::new();
        for (a, b) in pairs {
            let key = (a, b, clause_key);
            let cached = self.cache.lock().get(&key).cloned();
            let rels = match cached {
                Some(r) => r,
                None => {
                    let r = Arc::new(relation(
                        index,
                        &self.geometry,
                        &self.config,
                        a,
                        b,
                        &query.clause,
                    ));
                    self.cache.lock().insert(key, Arc::clone(&r));
                    r
                }
            };
            out.extend(rels.iter().cloned());
        }
        // Deterministic presentation: strongest scores first, ties by name.
        out.sort_by(|x, y| {
            y.score()
                .abs()
                .partial_cmp(&x.score().abs())
                .expect("scores are finite")
                .then_with(|| x.left.to_string().cmp(&y.left.to_string()))
                .then_with(|| x.right.to_string().cmp(&y.right.to_string()))
                .then_with(|| x.resolution.label().cmp(&y.resolution.label()))
                .then_with(|| x.class.label().cmp(y.class.label()))
        });
        Ok(out)
    }

    /// Number of cached per-pair results (diagnostics/tests).
    pub fn cache_len(&self) -> usize {
        self.cache.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Clause;
    use polygamy_stdata::{
        AttributeMeta, DatasetBuilder, DatasetMeta, GeoPoint, TemporalResolution,
    };

    fn tiny_dataset(name: &str, bump_at: i64) -> Dataset {
        let meta = DatasetMeta {
            name: name.into(),
            spatial_resolution: SpatialResolution::City,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("x"));
        for h in 0..600i64 {
            let v = if h == bump_at {
                50.0
            } else {
                (h % 24) as f64 * 0.01
            };
            b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn lifecycle_and_errors() {
        let mut dp = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            Config::fast_test(),
        );
        assert!(dp.index().is_err());
        dp.add_dataset(tiny_dataset("a", 100));
        dp.add_dataset(tiny_dataset("b", 100));
        let report = dp.build_index();
        assert_eq!(report.per_dataset.len(), 2);
        assert!(dp.index().is_ok());
        assert_eq!(dp.dataset_names(), vec!["a", "b"]);
        assert!(dp.dataset("a").is_some());
        assert!(dp.dataset("zzz").is_none());
        // Unknown dataset in query.
        let err = dp.relation("a", "nope").unwrap_err();
        assert!(matches!(err, Error::UnknownDataset(_)));
        // Adding data invalidates the index.
        dp.add_dataset(tiny_dataset("c", 50));
        assert!(dp.index().is_err());
    }

    #[test]
    fn query_caching() {
        let mut dp = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            Config::fast_test(),
        );
        dp.add_dataset(tiny_dataset("a", 100));
        dp.add_dataset(tiny_dataset("b", 100));
        dp.build_index();
        assert_eq!(dp.cache_len(), 0);
        let q = RelationshipQuery::all()
            .with_clause(Clause::default().permutations(40).include_insignificant());
        let r1 = dp.query(&q).unwrap();
        assert_eq!(dp.cache_len(), 1);
        let r2 = dp.query(&q).unwrap();
        assert_eq!(dp.cache_len(), 1);
        assert_eq!(r1, r2);
        // Different clause misses the cache.
        let q2 = RelationshipQuery::all()
            .with_clause(Clause::default().permutations(41).include_insignificant());
        dp.query(&q2).unwrap();
        assert_eq!(dp.cache_len(), 2);
    }

    #[test]
    fn symmetric_pairs_share_cache() {
        let mut dp = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            Config::fast_test(),
        );
        dp.add_dataset(tiny_dataset("a", 100));
        dp.add_dataset(tiny_dataset("b", 100));
        dp.build_index();
        let c = Clause::default().permutations(40).include_insignificant();
        dp.query(&RelationshipQuery::between(&["a"], &["b"]).with_clause(c.clone()))
            .unwrap();
        dp.query(&RelationshipQuery::between(&["b"], &["a"]).with_clause(c))
            .unwrap();
        assert_eq!(dp.cache_len(), 1);
    }

    #[test]
    fn geometry_accessors() {
        let g = CityGeometry::city_only(0.0, 0.0, 2.0, 2.0);
        assert!(g.partition(SpatialResolution::City).is_some());
        assert!(g.partition(SpatialResolution::Zip).is_none());
        assert!(g.partition(SpatialResolution::Gps).is_none());
        assert_eq!(g.adjacency(SpatialResolution::City).unwrap().len(), 1);
    }
}

//! The end-to-end Data Polygamy framework (paper Section 5).
//!
//! [`DataPolygamy`] owns the city geometry, the raw data sets, the built
//! index and a query cache. Indexing runs the scalar-function and
//! feature-identification jobs per data set — incrementally, so adding a
//! data set to an indexed corpus only indexes the newcomer; queries run the
//! relationship operator over data set pairs with result caching.

use crate::cache::{QueryCache, DEFAULT_QUERY_CACHE_CAPACITY};
use crate::error::{Error, Result};
use crate::executor::{execute_queries, execute_queries_routed, ShardMap};
use crate::index::{DatasetEntry, FunctionEntry, IndexView, PolygamyIndex};
use crate::pipeline::{compute_scalar_functions, identify_features};
use crate::query::RelationshipQuery;
use crate::relationship::Relationship;
use crate::significance::PermutationScheme;
use polygamy_mapreduce::Cluster;
use polygamy_stats::permutation::MonteCarlo;
use polygamy_stdata::{Dataset, SpatialPartition, SpatialResolution};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The polygon partitions of the city at each evaluable spatial resolution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityGeometry {
    /// Zip-code partition (optional).
    pub zip: Option<SpatialPartition>,
    /// Neighborhood partition (optional).
    pub neighborhood: Option<SpatialPartition>,
    /// The whole-city partition (always present; single region).
    pub city: SpatialPartition,
}

impl CityGeometry {
    /// Geometry with only the city-scale region (1-D functions only).
    pub fn city_only(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self {
            zip: None,
            neighborhood: None,
            city: SpatialPartition::city(x0, y0, x1, y1),
        }
    }

    /// Partition for a spatial resolution (None for GPS — raw coordinates
    /// are never evaluated directly).
    pub fn partition(&self, r: SpatialResolution) -> Option<&SpatialPartition> {
        match r {
            SpatialResolution::Gps => None,
            SpatialResolution::Zip => self.zip.as_ref(),
            SpatialResolution::Neighborhood => self.neighborhood.as_ref(),
            SpatialResolution::City => Some(&self.city),
        }
    }

    /// Region adjacency for a spatial resolution.
    pub fn adjacency(&self, r: SpatialResolution) -> Option<&[Vec<u32>]> {
        self.partition(r).map(|p| p.adjacency.as_slice())
    }
}

/// Framework configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Execution environment for the parallel jobs.
    pub cluster: Cluster,
    /// Monte Carlo defaults (clauses can override count/alpha per query).
    pub monte_carlo: MonteCarlo,
    /// Restricted permutation family.
    pub scheme: PermutationScheme,
    /// Base RNG seed (per-pair seeds derive deterministically from it).
    pub seed: u64,
    /// Keep scalar fields in the index (needed for custom-threshold
    /// clauses and the robustness/baseline experiments).
    pub keep_fields: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cluster: Cluster::host(),
            monte_carlo: MonteCarlo::default(),
            scheme: PermutationScheme::Paper,
            seed: 0xDA7A_9A17,
            keep_fields: true,
        }
    }
}

impl Config {
    /// A configuration for fast deterministic tests: 2 workers, 80
    /// permutations.
    pub fn fast_test() -> Self {
        Self {
            cluster: Cluster::local(2),
            monte_carlo: MonteCarlo {
                permutations: 80,
                ..MonteCarlo::default()
            },
            ..Self::default()
        }
    }
}

/// Timing breakdown of one data set's indexing (Figure 8's quantities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetBuildStats {
    /// Data set name.
    pub name: String,
    /// Seconds in the scalar-function-computation job.
    pub scalar_secs: f64,
    /// Seconds in the feature-identification job.
    pub feature_secs: f64,
    /// (function, resolution) entries produced.
    pub n_functions: usize,
}

/// Report returned by [`DataPolygamy::build_index`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IndexBuildReport {
    /// Stats for the data sets indexed by *this* call (previously indexed
    /// data sets are reused, not re-run), in indexing order.
    pub per_dataset: Vec<DatasetBuildStats>,
    /// Total wall seconds.
    pub total_secs: f64,
}

/// Runs the two indexing jobs for a single data set, producing its catalog
/// entry, its function segments and the timing stats. This is the unit of
/// incremental maintenance: [`DataPolygamy::build_index`] calls it once per
/// *new* data set, and `polygamy-store`'s upsert calls it for the one data
/// set being replaced, leaving the rest of the corpus untouched.
pub fn index_dataset(
    config: &Config,
    geometry: &CityGeometry,
    dataset_index: usize,
    dataset: &Dataset,
) -> (DatasetEntry, Vec<FunctionEntry>, DatasetBuildStats) {
    let t0 = Instant::now();
    let fields = compute_scalar_functions(config.cluster, geometry, dataset);
    let scalar_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let entries = identify_features(
        config.cluster,
        geometry,
        dataset_index,
        fields,
        config.keep_fields,
    );
    let feature_secs = t1.elapsed().as_secs_f64();
    let stats = DatasetBuildStats {
        name: dataset.meta.name.clone(),
        scalar_secs,
        feature_secs,
        n_functions: entries.len(),
    };
    let catalog = DatasetEntry {
        meta: dataset.meta.clone(),
        n_records: dataset.len(),
        raw_bytes: dataset.approx_bytes(),
        n_specs: crate::function::FunctionSpec::enumerate(dataset).len(),
    };
    (catalog, entries, stats)
}

/// The framework facade.
pub struct DataPolygamy {
    geometry: CityGeometry,
    config: Config,
    datasets: Vec<Dataset>,
    /// The (possibly partial) index; `datasets[..indexed]` are covered.
    index: PolygamyIndex,
    /// How many of `datasets` have been indexed so far.
    indexed: usize,
    /// Whether `build_index` has run at least once.
    built: bool,
    cache: QueryCache,
}

impl DataPolygamy {
    /// Creates an empty framework over a city geometry.
    pub fn new(geometry: CityGeometry, config: Config) -> Self {
        Self {
            geometry,
            config,
            datasets: Vec::new(),
            index: PolygamyIndex::default(),
            indexed: 0,
            built: false,
            cache: QueryCache::new(DEFAULT_QUERY_CACHE_CAPACITY),
        }
    }

    /// Registers a data set. The index becomes stale until the next
    /// [`DataPolygamy::build_index`], which indexes only the newcomers;
    /// entries already built are reused as-is.
    pub fn add_dataset(&mut self, dataset: Dataset) -> &mut Self {
        self.datasets.push(dataset);
        self
    }

    /// Unregisters a data set and drops its index entries without touching
    /// the rest of the corpus. Returns the removed raw data set.
    pub fn remove_dataset(&mut self, name: &str) -> Result<Dataset> {
        let pos = self
            .datasets
            .iter()
            .position(|d| d.meta.name == name)
            .ok_or_else(|| Error::UnknownDataset(name.to_string()))?;
        let removed = self.datasets.remove(pos);
        if pos < self.indexed {
            self.index.datasets.remove(pos);
            self.index.functions.retain(|f| f.dataset_index != pos);
            for f in &mut self.index.functions {
                if f.dataset_index > pos {
                    f.dataset_index -= 1;
                }
            }
            self.indexed -= 1;
            // Cached results are keyed by dataset position; removal shifts
            // positions, so everything cached is suspect.
            self.cache.clear();
        }
        Ok(removed)
    }

    /// Names of registered data sets, in insertion order.
    pub fn dataset_names(&self) -> Vec<&str> {
        self.datasets.iter().map(|d| d.meta.name.as_str()).collect()
    }

    /// Immutable access to a registered raw data set.
    pub fn dataset(&self, name: &str) -> Option<&Dataset> {
        self.datasets.iter().find(|d| d.meta.name == name)
    }

    /// The city geometry.
    pub fn geometry(&self) -> &CityGeometry {
        &self.geometry
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Runs the two indexing jobs over every data set not yet indexed,
    /// appending their entries to the existing index (incremental
    /// maintenance: data sets indexed by a previous call are not re-run).
    pub fn build_index(&mut self) -> IndexBuildReport {
        let total_start = Instant::now();
        let mut report = IndexBuildReport::default();
        for di in self.indexed..self.datasets.len() {
            let (catalog, entries, stats) =
                index_dataset(&self.config, &self.geometry, di, &self.datasets[di]);
            report.per_dataset.push(stats);
            self.index.datasets.push(catalog);
            self.index.functions.extend(entries);
        }
        self.indexed = self.datasets.len();
        self.built = true;
        report.total_secs = total_start.elapsed().as_secs_f64();
        report
    }

    /// The built index, or [`Error::IndexNotBuilt`] until the first
    /// [`DataPolygamy::build_index`] call or while any registered data set
    /// is still unindexed.
    pub fn index(&self) -> Result<&PolygamyIndex> {
        if self.built && self.indexed == self.datasets.len() {
            Ok(&self.index)
        } else {
            Err(Error::IndexNotBuilt)
        }
    }

    /// `relation(D1, D2)` with the default clause.
    pub fn relation(&self, d1: &str, d2: &str) -> Result<Vec<Relationship>> {
        self.query(&RelationshipQuery::between(&[d1], &[d2]))
    }

    /// Evaluates a relationship query on the flat executor: the query's
    /// pairs expand into one task list served by a single worker pool, so
    /// results are identical for any worker count.
    ///
    /// Pairs are deduplicated (the operator is symmetric up to swapping
    /// left/right); per-pair results are cached keyed by the clause.
    pub fn query(&self, query: &RelationshipQuery) -> Result<Vec<Relationship>> {
        run_query(
            self.index()?,
            &self.geometry,
            &self.config,
            &self.cache,
            query,
        )
    }

    /// Evaluates a batch of queries on one shared worker pool, amortising
    /// pool startup and deduplicating (pair, clause) evaluations across the
    /// batch. Returns one result vector per query, in input order; each is
    /// identical to what [`DataPolygamy::query`] returns for that query.
    pub fn query_many(&self, queries: &[RelationshipQuery]) -> Result<Vec<Vec<Relationship>>> {
        run_query_many(
            self.index()?,
            &self.geometry,
            &self.config,
            &self.cache,
            queries,
        )
    }

    /// Number of cached per-pair results (diagnostics/tests).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// Evaluates a relationship query against an index — the read path shared
/// by [`DataPolygamy::query`] and `polygamy-store`'s serving sessions.
///
/// Planning (name resolution, pair deduplication, cache lookups) happens on
/// the coordinating thread; cache misses expand into a flat (pair ×
/// function-unit × class) task list evaluated on one shared worker pool,
/// with results assembled in canonical task order — byte-identical output
/// for any worker count (see the flat executor, `core/src/executor.rs`).
pub fn run_query(
    index: &PolygamyIndex,
    geometry: &CityGeometry,
    config: &Config,
    cache: &QueryCache,
    query: &RelationshipQuery,
) -> Result<Vec<Relationship>> {
    run_query_view(&IndexView::full(index), geometry, config, cache, query)
}

/// Evaluates a relationship query against an [`IndexView`] — the same read
/// path as [`run_query`], but over a borrowed (possibly partial) set of
/// entries.
///
/// This is what makes demand-paged serving possible: a lazy store session
/// pins only the entries the query's expansion touches (see
/// [`crate::query_datasets`]) and evaluates without materializing the rest
/// of the store. Results are identical to [`run_query`] over a full index
/// whenever the view contains every entry the expansion reaches.
pub fn run_query_view(
    index: &IndexView<'_>,
    geometry: &CityGeometry,
    config: &Config,
    cache: &QueryCache,
    query: &RelationshipQuery,
) -> Result<Vec<Relationship>> {
    Ok(
        execute_queries(index, geometry, config, cache, std::slice::from_ref(query))?
            .pop()
            .unwrap_or_default(),
    )
}

/// Evaluates a batch of relationship queries against an index on one shared
/// worker pool — the batched read path behind [`DataPolygamy::query_many`]
/// and `polygamy-store`'s `query --batch`.
///
/// Returns one result vector per query, in input order; each equals what
/// [`run_query`] returns for that query alone, but pool startup is paid
/// once and duplicate (pair, clause) evaluations are shared across the
/// batch.
pub fn run_query_many(
    index: &PolygamyIndex,
    geometry: &CityGeometry,
    config: &Config,
    cache: &QueryCache,
    queries: &[RelationshipQuery],
) -> Result<Vec<Vec<Relationship>>> {
    execute_queries(&IndexView::full(index), geometry, config, cache, queries)
}

/// Evaluates a batch of relationship queries against an [`IndexView`] on
/// one shared worker pool — the batched twin of [`run_query_view`], with
/// the same partial-view semantics and the same batch amortisation as
/// [`run_query_many`].
pub fn run_query_many_view(
    index: &IndexView<'_>,
    geometry: &CityGeometry,
    config: &Config,
    cache: &QueryCache,
    queries: &[RelationshipQuery],
) -> Result<Vec<Vec<Relationship>>> {
    execute_queries(index, geometry, config, cache, queries)
}

/// [`run_query_view`] with an explicit [`ShardMap`]: the scatter-gather
/// entry point used by sharded store sessions. Tasks are grouped per
/// owning shard before evaluation and results gathered back into canonical
/// task order, so output is byte-identical to [`run_query_view`] for any
/// shard layout ([`ShardMap::monolithic`] routes exactly like the flat
/// executor).
pub fn run_query_view_routed(
    index: &IndexView<'_>,
    geometry: &CityGeometry,
    config: &Config,
    cache: &QueryCache,
    query: &RelationshipQuery,
    shards: &ShardMap,
) -> Result<Vec<Relationship>> {
    Ok(execute_queries_routed(
        index,
        geometry,
        config,
        cache,
        std::slice::from_ref(query),
        shards,
    )?
    .pop()
    .unwrap_or_default())
}

/// [`run_query_many_view`] with an explicit [`ShardMap`] — the batched
/// scatter-gather twin of [`run_query_view_routed`], with the same
/// byte-identity guarantee across shard layouts.
pub fn run_query_many_view_routed(
    index: &IndexView<'_>,
    geometry: &CityGeometry,
    config: &Config,
    cache: &QueryCache,
    queries: &[RelationshipQuery],
    shards: &ShardMap,
) -> Result<Vec<Vec<Relationship>>> {
    execute_queries_routed(index, geometry, config, cache, queries, shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Clause;
    use polygamy_stdata::{
        AttributeMeta, DatasetBuilder, DatasetMeta, GeoPoint, TemporalResolution,
    };

    fn tiny_dataset(name: &str, bump_at: i64) -> Dataset {
        let meta = DatasetMeta {
            name: name.into(),
            spatial_resolution: SpatialResolution::City,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("x"));
        for h in 0..600i64 {
            let v = if h == bump_at {
                50.0
            } else {
                (h % 24) as f64 * 0.01
            };
            b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[v]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn lifecycle_and_errors() {
        let mut dp = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            Config::fast_test(),
        );
        assert!(dp.index().is_err());
        dp.add_dataset(tiny_dataset("a", 100));
        dp.add_dataset(tiny_dataset("b", 100));
        let report = dp.build_index();
        assert_eq!(report.per_dataset.len(), 2);
        assert!(dp.index().is_ok());
        assert_eq!(dp.dataset_names(), vec!["a", "b"]);
        assert!(dp.dataset("a").is_some());
        assert!(dp.dataset("zzz").is_none());
        // Unknown dataset in query.
        let err = dp.relation("a", "nope").unwrap_err();
        assert!(matches!(err, Error::UnknownDataset(_)));
        // Adding data invalidates the index.
        dp.add_dataset(tiny_dataset("c", 50));
        assert!(dp.index().is_err());
    }

    #[test]
    fn query_caching() {
        let mut dp = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            Config::fast_test(),
        );
        dp.add_dataset(tiny_dataset("a", 100));
        dp.add_dataset(tiny_dataset("b", 100));
        dp.build_index();
        assert_eq!(dp.cache_len(), 0);
        let q = RelationshipQuery::all()
            .with_clause(Clause::default().permutations(40).include_insignificant());
        let r1 = dp.query(&q).unwrap();
        assert_eq!(dp.cache_len(), 1);
        let r2 = dp.query(&q).unwrap();
        assert_eq!(dp.cache_len(), 1);
        assert_eq!(r1, r2);
        // Different clause misses the cache.
        let q2 = RelationshipQuery::all()
            .with_clause(Clause::default().permutations(41).include_insignificant());
        dp.query(&q2).unwrap();
        assert_eq!(dp.cache_len(), 2);
    }

    #[test]
    fn symmetric_pairs_share_cache() {
        let mut dp = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            Config::fast_test(),
        );
        dp.add_dataset(tiny_dataset("a", 100));
        dp.add_dataset(tiny_dataset("b", 100));
        dp.build_index();
        let c = Clause::default().permutations(40).include_insignificant();
        dp.query(&RelationshipQuery::between(&["a"], &["b"]).with_clause(c.clone()))
            .unwrap();
        dp.query(&RelationshipQuery::between(&["b"], &["a"]).with_clause(c))
            .unwrap();
        assert_eq!(dp.cache_len(), 1);
    }

    #[test]
    fn incremental_build_indexes_only_newcomers() {
        let mut dp = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            Config::fast_test(),
        );
        dp.add_dataset(tiny_dataset("a", 100));
        dp.add_dataset(tiny_dataset("b", 100));
        let first = dp.build_index();
        assert_eq!(first.per_dataset.len(), 2);
        let n_before = dp.index().unwrap().functions.len();

        dp.add_dataset(tiny_dataset("c", 50));
        assert!(dp.index().is_err(), "stale until rebuilt");
        let second = dp.build_index();
        // Only the newcomer was indexed by the second call.
        assert_eq!(second.per_dataset.len(), 1);
        assert_eq!(second.per_dataset[0].name, "c");
        let index = dp.index().unwrap();
        assert_eq!(index.datasets.len(), 3);
        assert!(index.functions.len() > n_before);
        // The incremental index answers queries over old and new data sets.
        let q = RelationshipQuery::between(&["a"], &["c"])
            .with_clause(Clause::default().permutations(40).include_insignificant());
        dp.query(&q).unwrap();
    }

    #[test]
    fn incremental_matches_batch_rebuild() {
        let geometry = CityGeometry::city_only(0.0, 0.0, 1.0, 1.0);
        let mut inc = DataPolygamy::new(geometry.clone(), Config::fast_test());
        inc.add_dataset(tiny_dataset("a", 100));
        inc.add_dataset(tiny_dataset("b", 200));
        inc.build_index();
        inc.add_dataset(tiny_dataset("c", 50));
        inc.build_index();

        let mut batch = DataPolygamy::new(geometry, Config::fast_test());
        batch.add_dataset(tiny_dataset("a", 100));
        batch.add_dataset(tiny_dataset("b", 200));
        batch.add_dataset(tiny_dataset("c", 50));
        batch.build_index();

        // NaN thresholds make struct equality vacuous; compare JSON forms.
        assert_eq!(
            inc.index().unwrap().to_json().unwrap(),
            batch.index().unwrap().to_json().unwrap()
        );
    }

    #[test]
    fn remove_dataset_drops_entries_and_shifts_indices() {
        let mut dp = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            Config::fast_test(),
        );
        dp.add_dataset(tiny_dataset("a", 100));
        dp.add_dataset(tiny_dataset("b", 100));
        dp.add_dataset(tiny_dataset("c", 50));
        dp.build_index();
        let removed = dp.remove_dataset("b").unwrap();
        assert_eq!(removed.meta.name, "b");
        assert!(dp.remove_dataset("b").is_err());
        let index = dp.index().unwrap();
        assert_eq!(dp.dataset_names(), vec!["a", "c"]);
        assert_eq!(index.datasets.len(), 2);
        // Every function entry points at a live catalog slot.
        assert!(index.functions.iter().all(|f| f.dataset_index < 2));
        assert!(index.functions_of(1).count() > 0, "c's entries survived");
        // And the result matches a from-scratch build over {a, c}.
        let mut scratch = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            Config::fast_test(),
        );
        scratch.add_dataset(tiny_dataset("a", 100));
        scratch.add_dataset(tiny_dataset("c", 50));
        scratch.build_index();
        assert_eq!(
            index.to_json().unwrap(),
            scratch.index().unwrap().to_json().unwrap()
        );
    }

    /// A constant function: no features at any threshold, degenerate
    /// thresholds (the non-finite paths through sorting and evaluation).
    fn constant_dataset(name: &str) -> Dataset {
        let meta = DatasetMeta {
            name: name.into(),
            spatial_resolution: SpatialResolution::City,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let mut b = DatasetBuilder::new(meta).attribute(AttributeMeta::named("x"));
        for h in 0..300i64 {
            b.push(GeoPoint::new(0.5, 0.5), h * 3_600, &[1.0]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn degenerate_constant_pair_queries_do_not_panic() {
        // Constant functions produce NaN thresholds and empty/degenerate
        // feature sets; the query path (including the result sort, which
        // uses total_cmp rather than panicking partial_cmp) must survive
        // them and stay deterministic.
        let mut dp = DataPolygamy::new(
            CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            Config::fast_test(),
        );
        dp.add_dataset(constant_dataset("flat1"));
        dp.add_dataset(constant_dataset("flat2"));
        dp.add_dataset(tiny_dataset("spiky", 100));
        dp.build_index();
        let q = RelationshipQuery::all()
            .with_clause(Clause::default().permutations(20).include_insignificant());
        let rels = dp.query(&q).unwrap();
        // With user thresholds on top of the constant functions as well.
        let q2 = RelationshipQuery::all().with_clause(
            Clause::default()
                .permutations(20)
                .include_insignificant()
                .with_thresholds("flat1", 0.5, 1.5),
        );
        let rels2 = dp.query(&q2).unwrap();
        // Deterministic across repeat evaluation (cache on/off paths).
        assert_eq!(rels, dp.query(&q).unwrap());
        assert_eq!(rels2, dp.query(&q2).unwrap());
    }

    #[test]
    fn query_many_matches_sequential_queries() {
        let build = || {
            let mut dp = DataPolygamy::new(
                CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
                Config::fast_test(),
            );
            dp.add_dataset(tiny_dataset("a", 100));
            dp.add_dataset(tiny_dataset("b", 100));
            dp.add_dataset(tiny_dataset("c", 50));
            dp.build_index();
            dp
        };
        let clause = Clause::default().permutations(40).include_insignificant();
        let queries = vec![
            RelationshipQuery::between(&["a"], &["b"]).with_clause(clause.clone()),
            RelationshipQuery::all().with_clause(clause.clone()),
            // Duplicate of the first: shares its evaluation in the batch.
            RelationshipQuery::between(&["b"], &["a"]).with_clause(clause),
        ];
        let batched = build().query_many(&queries).unwrap();
        let sequential = build();
        for (q, batch_result) in queries.iter().zip(&batched) {
            assert_eq!(batch_result, &sequential.query(q).unwrap());
        }
        assert_eq!(batched[0], batched[2]);
        // The whole batch evaluated exactly the 3 canonical pairs once.
        let dp = build();
        dp.query_many(&queries).unwrap();
        assert_eq!(dp.cache_len(), 3);
    }

    #[test]
    fn missing_geometry_is_a_typed_error() {
        use crate::function::FunctionSpec;
        use polygamy_stdata::Resolution;
        use polygamy_topology::{FeatureSet, FeatureSets, SeasonalThresholds, Thresholds};

        // Hand-craft an index that claims zip-resolution functions against
        // a geometry that only has the city partition — the shape of a
        // store file whose geometry blob lost a partition its segments
        // need.
        let entry = |di: usize, name: &str| {
            let (n_regions, n_steps) = (2, 4);
            FunctionEntry {
                spec: FunctionSpec::density(name),
                dataset_index: di,
                resolution: Resolution::new(SpatialResolution::Zip, TemporalResolution::Hour),
                n_regions,
                start_bucket: 0,
                n_steps,
                features: FeatureSets {
                    salient: FeatureSet::empty(n_regions * n_steps),
                    extreme: FeatureSet::empty(n_regions * n_steps),
                },
                thresholds: SeasonalThresholds {
                    interval_of_step: vec![0; n_steps],
                    interval_ids: vec![0],
                    per_interval: vec![Thresholds::none()],
                },
                field: None,
                tree_nodes: 0,
            }
        };
        let catalog = |name: &str| DatasetEntry {
            meta: polygamy_stdata::DatasetMeta {
                name: name.into(),
                spatial_resolution: SpatialResolution::Zip,
                temporal_resolution: TemporalResolution::Hour,
                description: String::new(),
            },
            n_records: 4,
            raw_bytes: 64,
            n_specs: 1,
        };
        let index = PolygamyIndex {
            datasets: vec![catalog("a"), catalog("b")],
            functions: vec![entry(0, "a"), entry(1, "b")],
        };
        let err = run_query(
            &index,
            &CityGeometry::city_only(0.0, 0.0, 1.0, 1.0),
            &Config::fast_test(),
            &QueryCache::new(16),
            &RelationshipQuery::all(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            Error::MissingGeometry(SpatialResolution::Zip)
        ));
        assert!(err.to_string().contains("zip"));
    }

    #[test]
    fn geometry_accessors() {
        let g = CityGeometry::city_only(0.0, 0.0, 2.0, 2.0);
        assert!(g.partition(SpatialResolution::City).is_some());
        assert!(g.partition(SpatialResolution::Zip).is_none());
        assert!(g.partition(SpatialResolution::Gps).is_none());
        assert_eq!(g.adjacency(SpatialResolution::City).unwrap().len(), 1);
    }
}

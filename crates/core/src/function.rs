//! Scalar-function specifications (paper Section 5.1).
//!
//! A data set `D` with attributes `{K, S, T, A1, …, Ak}` yields:
//! one *density* function, one *unique* function per identifier key, and
//! one *attribute* function per numerical attribute (the paper uses the
//! average; other aggregates are supported per Section 8).

use polygamy_stdata::{AggregateKind, Dataset, FunctionKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scalar function derived from one data set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Data set name.
    pub dataset: String,
    /// Human-readable function name (`"density"`, `"unique"`,
    /// `"avg(wind-speed)"`, …).
    pub name: String,
    /// What to compute.
    pub kind: FunctionKind,
}

impl FunctionSpec {
    /// The density function of a data set.
    pub fn density(dataset: &str) -> Self {
        Self {
            dataset: dataset.to_string(),
            name: "density".to_string(),
            kind: FunctionKind::Density,
        }
    }

    /// The unique (distinct identifier count) function.
    pub fn unique(dataset: &str) -> Self {
        Self {
            dataset: dataset.to_string(),
            name: "unique".to_string(),
            kind: FunctionKind::Unique,
        }
    }

    /// An attribute function.
    pub fn attribute(
        dataset: &str,
        attr_index: usize,
        attr_name: &str,
        agg: AggregateKind,
    ) -> Self {
        Self {
            dataset: dataset.to_string(),
            name: format!("{}({})", agg.label(), attr_name),
            kind: FunctionKind::Attribute {
                attr: attr_index,
                agg,
            },
        }
    }

    /// Enumerates every scalar function the framework derives from a data
    /// set: density, unique (when keys exist) and the average of each
    /// numerical attribute.
    pub fn enumerate(dataset: &Dataset) -> Vec<FunctionSpec> {
        let name = dataset.meta.name.as_str();
        let mut out = vec![Self::density(name)];
        if dataset.has_keys() {
            out.push(Self::unique(name));
        }
        for (i, attr) in dataset.attributes.iter().enumerate() {
            out.push(Self::attribute(name, i, &attr.name, AggregateKind::Mean));
        }
        out
    }
}

impl fmt::Display for FunctionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.dataset, self.name)
    }
}

/// A `(dataset, function)` reference used in query results.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionRef {
    /// Data set name.
    pub dataset: String,
    /// Function name.
    pub function: String,
}

impl fmt::Display for FunctionRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.dataset, self.function)
    }
}

impl From<&FunctionSpec> for FunctionRef {
    fn from(spec: &FunctionSpec) -> Self {
        Self {
            dataset: spec.dataset.clone(),
            function: spec.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polygamy_stdata::{
        AttributeMeta, DatasetBuilder, DatasetMeta, SpatialResolution, TemporalResolution,
    };

    fn dataset(with_keys: bool) -> Dataset {
        let meta = DatasetMeta {
            name: "taxi".into(),
            spatial_resolution: SpatialResolution::Gps,
            temporal_resolution: TemporalResolution::Hour,
            description: String::new(),
        };
        let mut b = DatasetBuilder::new(meta)
            .attribute(AttributeMeta::named("fare"))
            .attribute(AttributeMeta::named("miles"));
        if with_keys {
            b = b.with_keys();
        }
        b.build().unwrap()
    }

    #[test]
    fn enumerate_with_keys() {
        let specs = FunctionSpec::enumerate(&dataset(true));
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["density", "unique", "avg(fare)", "avg(miles)"]);
        assert!(specs.iter().all(|s| s.dataset == "taxi"));
    }

    #[test]
    fn enumerate_without_keys() {
        let specs = FunctionSpec::enumerate(&dataset(false));
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["density", "avg(fare)", "avg(miles)"]);
    }

    #[test]
    fn display_forms() {
        let spec = FunctionSpec::density("taxi");
        assert_eq!(spec.to_string(), "taxi.density");
        let r = FunctionRef::from(&spec);
        assert_eq!(r.to_string(), "taxi.density");
    }
}
